//! A minimal HTTP/1.1 server on `std::net`, sized for gsim-serve.
//!
//! Scope: exactly what a local prediction service needs and nothing
//! more — an accept loop feeding a bounded pool of worker threads,
//! strict request parsing with size and time limits, keep-alive, and a
//! cooperative shutdown flag. No TLS, no chunked bodies, no routing
//! DSL; the handler is one function from [`Request`] to [`Response`].
//!
//! # Shutdown
//!
//! The workspace forbids `unsafe`, so installing POSIX signal handlers
//! is off the table. Shutdown is therefore *cooperative*: anything
//! holding the server's [`ShutdownFlag`] (the `POST /v1/shutdown`
//! endpoint, the CLI's stdin watcher, a test) can trigger it; the
//! accept loop notices within one poll interval, stops accepting, and
//! joins the workers after they finish their in-flight connections.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How often the accept loop re-checks the shutdown flag when idle.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A cooperative shutdown signal shared by the server, its handler, and
/// whoever supervises them (clone freely; all clones observe the same
/// flag).
#[derive(Clone, Default)]
pub struct ShutdownFlag(Arc<AtomicBool>);

impl ShutdownFlag {
    /// A fresh, untriggered flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests shutdown. Idempotent.
    pub fn trigger(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_triggered(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method verb (`GET`, `POST`, …) as received.
    pub method: String,
    /// Request target, e.g. `/v1/predict` (query string not split off).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// An HTTP response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 400, …).
    pub status: u16,
    /// Extra headers; `Content-Length` and `Connection` are added by the
    /// server when writing.
    pub headers: Vec<(String, String)>,
    /// Response body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response: sets `Content-Type: application/json`.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into(),
        }
    }

    /// Adds one header.
    #[must_use]
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Server tuning knobs; the defaults suit a local prediction service.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections (the bound on concurrency).
    pub threads: usize,
    /// Maximum bytes of request line + headers.
    pub max_header_bytes: usize,
    /// Maximum request body size.
    pub max_body_bytes: usize,
    /// Per-read socket timeout; a stalled client cannot pin a worker.
    pub read_timeout: Duration,
    /// Requests served on one keep-alive connection before closing.
    pub max_requests_per_conn: u32,
    /// How long shutdown waits for in-flight connections before
    /// detaching any stragglers and returning anyway.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            threads: 4,
            max_header_bytes: 8 * 1024,
            // Sized for `POST /v1/traces`: a v2 trace of a suite-scale
            // workload is a few MiB; predict bodies are tiny regardless.
            max_body_bytes: 16 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
            max_requests_per_conn: 1000,
            drain_grace: Duration::from_secs(5),
        }
    }
}

/// The handler type: pure function of the request. Cloned into every
/// worker thread via `Arc`.
pub type Handler = dyn Fn(&Request) -> Response + Send + Sync;

/// A bound listener plus its worker-pool configuration.
pub struct Server {
    listener: TcpListener,
    cfg: ServerConfig,
    shutdown: ShutdownFlag,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (bad address, port in use, …).
    pub fn bind(addr: &str, cfg: ServerConfig, shutdown: ShutdownFlag) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        Ok(Self {
            listener,
            cfg,
            shutdown,
        })
    }

    /// The actually-bound address (resolves ephemeral ports).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the accept loop until the shutdown flag triggers, then
    /// drains: stops accepting, lets in-flight connections finish, and
    /// joins the workers. If the drain takes longer than
    /// [`ServerConfig::drain_grace`] the stragglers are detached (their
    /// threads keep running until their current request completes, but
    /// `serve` returns so the process can exit on schedule).
    ///
    /// # Errors
    ///
    /// Returns an error if the listener cannot be polled.
    pub fn serve(self, handler: Arc<Handler>) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let live = Arc::new(AtomicUsize::new(self.cfg.threads.max(1)));

        let workers: Vec<_> = (0..self.cfg.threads.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let handler = Arc::clone(&handler);
                let cfg = self.cfg.clone();
                let shutdown = self.shutdown.clone();
                let live = Arc::clone(&live);
                std::thread::Builder::new()
                    .name(format!("gsim-serve-{i}"))
                    .spawn(move || {
                        loop {
                            // Holding the lock only while receiving keeps the
                            // queue shared without serialising the handling.
                            let next = rx.lock().expect("worker queue poisoned").recv();
                            match next {
                                Ok(stream) => handle_connection(stream, &cfg, &handler, &shutdown),
                                Err(_) => break, // acceptor hung up: drain done
                            }
                        }
                        live.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawn http worker")
            })
            .collect();

        while !self.shutdown.is_triggered() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if tx.send(stream).is_err() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        drop(tx); // workers exit once the queue drains
        let deadline = Instant::now() + self.cfg.drain_grace;
        while live.load(Ordering::SeqCst) > 0 {
            if Instant::now() >= deadline {
                // Grace exhausted: detach the stragglers. Keep-alive
                // connections close at the next request boundary (see
                // handle_connection), so this only abandons workers
                // stuck inside a single slow request or read.
                return Ok(());
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        for w in workers {
            let _ = w.join();
        }
        Ok(())
    }
}

/// Serves one connection: parse, handle, respond, repeat while
/// keep-alive applies. Any parse error produces one best-effort error
/// response and closes.
fn handle_connection(
    stream: TcpStream,
    cfg: &ServerConfig,
    handler: &Arc<Handler>,
    shutdown: &ShutdownFlag,
) {
    let _ = stream.set_read_timeout(Some(cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    let mut buf: Vec<u8> = Vec::new();
    let faults = gsim_faults::active();

    for served in 0..cfg.max_requests_per_conn {
        if served > 0 && shutdown.is_triggered() {
            // Close keep-alive connections at the request boundary so a
            // drain is not held hostage by an idle client's read_timeout.
            return;
        }
        if let Some(delay) = faults.and_then(|f| f.http_read_delay()) {
            std::thread::sleep(delay);
        }
        let req = match read_request(&mut stream, &mut buf, cfg, served == 0) {
            Ok(Some(req)) => req,
            Ok(None) => return, // clean EOF between requests
            Err(status) => {
                let body = format!("{{\"error\": {}}}", gsim_json::json_string(reason(status)));
                let _ = write_response(&mut stream, &Response::json(status, body), true);
                return;
            }
        };
        let close =
            shutdown.is_triggered() || served + 1 == cfg.max_requests_per_conn || wants_close(&req);
        let resp = handler(&req);
        if faults.is_some_and(|f| f.http_disconnect()) {
            // Injected mid-body disconnect: advertise the full length,
            // send half the body, and hang up.
            let _ = write_truncated(&mut stream, &resp);
            return;
        }
        if write_response(&mut stream, &resp, close).is_err() || close {
            return;
        }
    }
}

/// Writes a response head claiming the full `Content-Length` but only
/// half the body, then closes. Exists solely for fault injection: the
/// client observes a mid-body disconnect exactly as it would from a
/// crashed server.
fn write_truncated(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status));
    for (k, v) in &resp.headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", resp.body.len()));
    head.push_str("Connection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body[..resp.body.len() / 2])?;
    stream.flush()
}

fn wants_close(req: &Request) -> bool {
    req.header("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"))
}

/// Reads one request. `Ok(None)` means the peer closed before sending
/// anything (normal keep-alive termination, only reported when the
/// buffer is empty). `Err(status)` is the HTTP status to fail with.
fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    cfg: &ServerConfig,
    first: bool,
) -> Result<Option<Request>, u16> {
    // Accumulate until the blank line ending the header block.
    let header_end = loop {
        if let Some(pos) = find_header_end(buf) {
            break pos;
        }
        if buf.len() > cfg.max_header_bytes {
            return Err(413);
        }
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None)
                } else {
                    Err(400) // truncated mid-request
                };
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                return if buf.is_empty() && !first {
                    Ok(None) // idle keep-alive connection: just close
                } else {
                    Err(408)
                };
            }
            Err(_) => return Err(400),
        }
    };

    let (method, path, headers) = {
        let head = std::str::from_utf8(&buf[..header_end]).map_err(|_| 400u16)?;
        let mut lines = head.split("\r\n");
        let request_line = lines.next().ok_or(400u16)?;
        let mut parts = request_line.split(' ');
        let method = parts.next().filter(|m| !m.is_empty()).ok_or(400u16)?;
        let path = parts.next().filter(|p| p.starts_with('/')).ok_or(400u16)?;
        let version = parts.next().ok_or(400u16)?;
        if parts.next().is_some() || !version.starts_with("HTTP/1.") {
            return Err(400);
        }

        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (name, value) = line.split_once(':').ok_or(400u16)?;
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
        (method.to_string(), path.to_string(), headers)
    };
    let header_of = |n: &str| {
        headers
            .iter()
            .find(|(k, _)| k == n)
            .map(|(_, v)| v.as_str())
    };
    if header_of("transfer-encoding").is_some() {
        return Err(501); // chunked and friends are out of scope
    }
    let content_length: usize = match header_of("content-length") {
        Some(v) => v.parse().map_err(|_| 400u16)?,
        None => 0,
    };
    if content_length > cfg.max_body_bytes {
        return Err(413);
    }

    // Read the body: part may already sit in the buffer past the headers.
    let body_start = header_end + 4;
    while buf.len() < body_start + content_length {
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk) {
            Ok(0) => return Err(400),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Err(408),
            Err(_) => return Err(400),
        }
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    let request = Request {
        method,
        path,
        headers,
        body,
    };
    // Keep any pipelined bytes for the next request on this connection.
    buf.drain(..body_start + content_length);
    Ok(Some(request))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

fn write_response(stream: &mut TcpStream, resp: &Response, close: bool) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, reason(resp.status));
    for (k, v) in &resp.headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n", resp.body.len()));
    head.push_str(if close {
        "Connection: close\r\n\r\n"
    } else {
        "Connection: keep-alive\r\n\r\n"
    });
    stream.write_all(head.as_bytes())?;
    stream.write_all(&resp.body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn start(
        handler: impl Fn(&Request) -> Response + Send + Sync + 'static,
    ) -> (SocketAddr, ShutdownFlag, std::thread::JoinHandle<()>) {
        let shutdown = ShutdownFlag::new();
        let server = Server::bind(
            "127.0.0.1:0",
            ServerConfig {
                threads: 2,
                read_timeout: Duration::from_millis(500),
                ..ServerConfig::default()
            },
            shutdown.clone(),
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let flag = shutdown.clone();
        let join = std::thread::spawn(move || server.serve(Arc::new(handler)).unwrap());
        (addr, flag, join)
    }

    fn roundtrip(addr: SocketAddr, raw: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(raw.as_bytes()).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_and_shuts_down() {
        let (addr, shutdown, join) = start(|req| {
            Response::json(
                200,
                format!("{{\"path\": {}}}", gsim_json::json_string(&req.path)),
            )
        });
        let resp = roundtrip(
            addr,
            "GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.ends_with("{\"path\": \"/healthz\"}"), "{resp}");
        shutdown.trigger();
        join.join().unwrap();
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let (addr, shutdown, join) = start(|req| Response::json(200, req.body.clone()));
        let mut s = TcpStream::connect(addr).unwrap();
        for payload in ["one", "two"] {
            let raw = format!(
                "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{payload}",
                payload.len()
            );
            s.write_all(raw.as_bytes()).unwrap();
            let mut reader = BufReader::new(s.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("HTTP/1.1 200"), "{line}");
            let mut len = 0usize;
            loop {
                let mut h = String::new();
                reader.read_line(&mut h).unwrap();
                if let Some(v) = h.to_ascii_lowercase().strip_prefix("content-length:") {
                    len = v.trim().parse().unwrap();
                }
                if h == "\r\n" {
                    break;
                }
            }
            let mut body = vec![0u8; len];
            reader.read_exact(&mut body).unwrap();
            assert_eq!(body, payload.as_bytes());
        }
        drop(s);
        shutdown.trigger();
        join.join().unwrap();
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        let (addr, shutdown, join) = start(|_| Response::json(200, "{}"));
        let resp = roundtrip(addr, "NONSENSE\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        // Claimed body larger than the limit is refused outright.
        let resp = roundtrip(
            addr,
            "POST /x HTTP/1.1\r\nHost: x\r\nContent-Length: 99999999\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 413"), "{resp}");
        let resp = roundtrip(
            addr,
            "POST /x HTTP/1.1\r\nHost: x\r\nTransfer-Encoding: chunked\r\n\r\n",
        );
        assert!(resp.starts_with("HTTP/1.1 501"), "{resp}");
        shutdown.trigger();
        join.join().unwrap();
    }
}
