//! Single-flight request deduplication.
//!
//! N concurrent requests for the same content address must cost one
//! simulation. The first arrival becomes the *leader* and receives a
//! [`Promise`]; everyone else becomes a *follower* holding a
//! [`JobHandle`] on the same slot and blocks until the leader publishes.
//! The pair comes from [`gsim_runner::handle`]; this module only adds
//! the keyed registry and the leader-crash safety net (a dropped,
//! unpublished promise wakes followers with
//! [`Abandoned`](gsim_runner::Abandoned) instead of deadlocking them).

use std::collections::HashMap;
use std::sync::Mutex;

use gsim_runner::{job_handle, JobHandle, Promise};

/// What [`SingleFlight::join`] hands back.
pub enum Role<T> {
    /// First arrival: compute the value, then [`SingleFlight::publish`]
    /// it through this promise.
    Leader(Promise<T>),
    /// Later arrival: `wait()` for the leader's value.
    Follower(JobHandle<T>),
}

/// A keyed registry of in-flight computations.
#[derive(Default)]
pub struct SingleFlight<T> {
    inflight: Mutex<HashMap<u64, JobHandle<T>>>,
}

impl<T> SingleFlight<T> {
    /// An empty registry.
    pub fn new() -> Self {
        Self {
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Joins the flight for `key`: the first caller per key becomes the
    /// leader, every caller until [`publish`](Self::publish) a follower.
    /// A flight whose leader died without publishing (its promise was
    /// dropped) is replaced, so one crash never wedges a key forever.
    pub fn join(&self, key: u64) -> Role<T> {
        let mut inflight = self.lock();
        if let Some(handle) = inflight.get(&key) {
            if !handle.is_abandoned() {
                return Role::Follower(handle.clone());
            }
        }
        let (promise, handle) = job_handle();
        inflight.insert(key, handle);
        Role::Leader(promise)
    }

    /// Publishes the leader's value: removes the key (new arrivals start
    /// a fresh flight — by then the result sits in the cache) and wakes
    /// every follower.
    pub fn publish(&self, key: u64, promise: Promise<T>, value: T) {
        self.lock().remove(&key);
        promise.set(value);
    }

    /// Number of keys currently in flight.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no computation is in flight.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, JobHandle<T>>> {
        self.inflight.lock().expect("single-flight lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn one_leader_many_followers() {
        let sf = Arc::new(SingleFlight::<u32>::new());
        let computations = Arc::new(AtomicU32::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let sf = Arc::clone(&sf);
                let computations = Arc::clone(&computations);
                std::thread::spawn(move || match sf.join(42) {
                    Role::Leader(promise) => {
                        computations.fetch_add(1, Ordering::SeqCst);
                        // Linger so the other threads all arrive as
                        // followers of this flight.
                        std::thread::sleep(Duration::from_millis(100));
                        sf.publish(42, promise, 7);
                        7
                    }
                    Role::Follower(handle) => *handle.wait().expect("leader published"),
                })
            })
            .collect();
        let values: Vec<u32> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert_eq!(computations.load(Ordering::SeqCst), 1, "exactly one leader");
        assert!(values.iter().all(|&v| v == 7));
        assert!(sf.is_empty(), "flight cleared after publish");
    }

    #[test]
    fn distinct_keys_fly_independently() {
        let sf = SingleFlight::<&'static str>::new();
        let Role::Leader(p1) = sf.join(1) else {
            panic!("first join must lead")
        };
        let Role::Leader(p2) = sf.join(2) else {
            panic!("distinct key must lead its own flight")
        };
        assert_eq!(sf.len(), 2);
        sf.publish(1, p1, "one");
        sf.publish(2, p2, "two");
        assert!(sf.is_empty());
    }

    #[test]
    fn dropped_leader_wakes_followers_with_abandoned() {
        let sf = SingleFlight::<u32>::new();
        let Role::Leader(promise) = sf.join(9) else {
            panic!("must lead")
        };
        let Role::Follower(handle) = sf.join(9) else {
            panic!("must follow")
        };
        drop(promise); // leader died without publishing
        assert!(
            handle.wait().is_err(),
            "follower sees Abandoned, not a hang"
        );
        // The stale key must not poison future flights: the next joiner
        // notices the abandoned handle and becomes the new leader.
        assert!(matches!(sf.join(9), Role::Leader(_)));
    }
}
