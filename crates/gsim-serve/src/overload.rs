//! Admission control and load-shed policy.
//!
//! The HTTP worker pool bounds *connections*; this module bounds what
//! those connections may cost. Requests are split into two endpoint
//! classes — [`EndpointClass::Cheap`] reads that finish in microseconds
//! and [`EndpointClass::Heavy`] timing-sim predicts — each with its own
//! in-flight budget in an [`AdmissionGate`]. A request that does not fit
//! its budget is *shed* with `429 Too Many Requests` and a `Retry-After`
//! computed from the observed p50 service time of the heavy class
//! ([`retry_after_secs`]), instead of queueing unboundedly behind work
//! that cannot finish any sooner.
//!
//! Splitting the budgets is what keeps the service observable while it
//! is saturated: heavy predicts can exhaust their own budget without
//! consuming the workers that `/metrics` and the trace catalog need.
//! `/healthz` and `/v1/shutdown` bypass admission entirely — liveness
//! probes and the drain path must work *especially* when overloaded.

use std::sync::atomic::{AtomicI64, Ordering};

/// Which in-flight budget a request draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EndpointClass {
    /// Catalog reads, metrics, trace uploads: no timing simulation.
    Cheap,
    /// `POST /v1/predict`: may schedule timing simulations.
    Heavy,
}

struct ClassGate {
    limit: i64,
    inflight: AtomicI64,
}

impl ClassGate {
    fn try_acquire(&self) -> bool {
        // Optimistic increment: cheaper than a CAS loop and the
        // overshoot window is bounded by the caller count.
        if self.inflight.fetch_add(1, Ordering::AcqRel) >= self.limit {
            self.inflight.fetch_sub(1, Ordering::AcqRel);
            return false;
        }
        true
    }
}

/// Per-class in-flight budgets with RAII accounting.
pub struct AdmissionGate {
    cheap: ClassGate,
    heavy: ClassGate,
}

/// Proof of admission; dropping it releases the slot. Hold it for the
/// request's whole lifetime — including time spent blocked as a
/// single-flight follower, which still pins an HTTP worker.
pub struct Permit<'a> {
    gate: &'a ClassGate,
}

impl Drop for Permit<'_> {
    fn drop(&mut self) {
        self.gate.inflight.fetch_sub(1, Ordering::AcqRel);
    }
}

impl AdmissionGate {
    /// A gate admitting at most `max_cheap` / `max_heavy` concurrent
    /// requests per class (each clamped to at least 1).
    pub fn new(max_cheap: usize, max_heavy: usize) -> Self {
        let class = |max: usize| ClassGate {
            limit: i64::try_from(max.max(1)).unwrap_or(i64::MAX),
            inflight: AtomicI64::new(0),
        };
        Self {
            cheap: class(max_cheap),
            heavy: class(max_heavy),
        }
    }

    fn class(&self, class: EndpointClass) -> &ClassGate {
        match class {
            EndpointClass::Cheap => &self.cheap,
            EndpointClass::Heavy => &self.heavy,
        }
    }

    /// Admits the request if its class has budget, returning the permit
    /// to hold for the request's duration; `None` means shed it.
    pub fn try_admit(&self, class: EndpointClass) -> Option<Permit<'_>> {
        let gate = self.class(class);
        // `then`, not `then_some`: an eagerly-built Permit would run its
        // decrementing Drop even when admission failed.
        gate.try_acquire().then(|| Permit { gate })
    }

    /// Currently admitted requests of `class`.
    pub fn inflight(&self, class: EndpointClass) -> i64 {
        self.class(class).inflight.load(Ordering::Acquire)
    }

    /// The class's budget.
    pub fn limit(&self, class: EndpointClass) -> i64 {
        self.class(class).limit
    }
}

/// `Retry-After` seconds for a shed request: roughly how long until a
/// heavy slot frees up, estimated as the observed p50 service time times
/// the queue position a retry would face. Clamped to `[1, 60]` so a cold
/// histogram still backs clients off and a pathological p50 cannot tell
/// them to go away for an hour.
pub fn retry_after_secs(p50_us: Option<u64>, inflight: i64) -> u64 {
    let p50_us = p50_us.unwrap_or(0);
    let queued = inflight.max(0) as u64 + 1;
    let secs = (p50_us.saturating_mul(queued)).div_ceil(1_000_000);
    secs.clamp(1, 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_to_the_limit_and_releases_on_drop() {
        let gate = AdmissionGate::new(1, 2);
        let a = gate.try_admit(EndpointClass::Heavy).expect("first");
        let b = gate.try_admit(EndpointClass::Heavy).expect("second");
        assert!(
            gate.try_admit(EndpointClass::Heavy).is_none(),
            "over budget"
        );
        assert_eq!(gate.inflight(EndpointClass::Heavy), 2);
        // Classes are independent budgets.
        let c = gate.try_admit(EndpointClass::Cheap).expect("cheap ok");
        assert!(gate.try_admit(EndpointClass::Cheap).is_none());
        drop(b);
        assert_eq!(gate.inflight(EndpointClass::Heavy), 1);
        // A freed slot is immediately admittable again (the permit here
        // is a temporary, released as soon as the assert finishes).
        assert!(gate.try_admit(EndpointClass::Heavy).is_some());
        drop((a, c));
        assert_eq!(gate.inflight(EndpointClass::Heavy), 0);
        assert_eq!(gate.inflight(EndpointClass::Cheap), 0);
    }

    #[test]
    fn zero_limits_clamp_to_one() {
        let gate = AdmissionGate::new(0, 0);
        assert_eq!(gate.limit(EndpointClass::Cheap), 1);
        assert!(gate.try_admit(EndpointClass::Heavy).is_some());
    }

    #[test]
    fn retry_after_scales_with_load_and_clamps() {
        // Cold histogram: still at least one second.
        assert_eq!(retry_after_secs(None, 0), 1);
        // 2s p50, 3 ahead of you → 8 seconds.
        assert_eq!(retry_after_secs(Some(2_000_000), 3), 8);
        // Sub-second service times round up, never to zero.
        assert_eq!(retry_after_secs(Some(100), 0), 1);
        // Pathological p50 cannot push clients out for an hour.
        assert_eq!(retry_after_secs(Some(u64::MAX), 10), 60);
    }
}
