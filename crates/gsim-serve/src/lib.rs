//! gsim-serve: an HTTP prediction service over the scale-model pipeline.
//!
//! The experiment crates answer *"how accurate is the method?"* by
//! simulating targets and comparing. This crate answers the question the
//! method exists for: *"how fast would this workload run on a GPU I
//! cannot afford to simulate?"* — as a long-lived local service. A
//! `POST /v1/predict` names a workload (a Table II / Table IV benchmark
//! or a synthetic [`PatternSpec`](gsim_trace::PatternSpec) description),
//! the target size, and optionally the scale-model sizes and memory
//! miniature; the service simulates only the two small scale models on a
//! [`gsim_runner`] pool, collects the functional miss-rate curve, runs
//! the [`gsim_core::oneshot`] predictor, and returns a JSON report.
//!
//! Three layers keep repeated questions cheap:
//!
//! * **Content-addressed caching** ([`cache`]): the response is keyed by
//!   a hash of everything it depends on — normalized request *and* every
//!   field of the derived GPU configs — held in an in-memory LRU with
//!   optional on-disk JSONL persistence that survives restarts.
//! * **Single-flight deduplication** ([`singleflight`]): N concurrent
//!   identical requests cost one simulation; followers block on the
//!   leader's [`gsim_runner::JobHandle`] and receive the identical body.
//! * **A dependency-free HTTP server** ([`http`]): `std::net` accept
//!   loop, bounded workers, strict limits, keep-alive, cooperative
//!   shutdown. The whole workspace builds offline; so does its service.
//!
//! Under load the service degrades deliberately rather than
//! accidentally ([`overload`], DESIGN.md §13): per-class admission
//! budgets shed excess requests with `429` + `Retry-After`, deadlines
//! (`X-Gsim-Deadline-Ms` or `--default-deadline-ms`) propagate into the
//! runner and cut over-budget predicts off with `504`, a saturated
//! simulation pool downgrades MRC-capable predicts to an MRC-only
//! `"degraded": true` fast path, and shutdown drains within a bounded
//! grace period. A deterministic fault-injection plan ([`gsim_faults`])
//! exercises all of it in the chaos harness (`scripts/chaos_smoke.sh`).
//!
//! `GET /metrics` ([`metrics`]) exposes request counts, cache hit/miss,
//! in-flight gauges and latency quantiles from an in-tree histogram.
//! DESIGN.md §11 documents the threading model and cache-key derivation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod metrics;
pub mod overload;
pub mod service;
pub mod singleflight;

pub use cache::{fnv1a, NegativeCache, ResultCache};
pub use http::{Handler, Request, Response, Server, ServerConfig, ShutdownFlag};
pub use metrics::{Histogram, Metrics, RunnerJobCounter};
pub use overload::{retry_after_secs, AdmissionGate, EndpointClass, Permit};
pub use service::{ApiError, PredictService, ServeConfig};
pub use singleflight::{Role, SingleFlight};
