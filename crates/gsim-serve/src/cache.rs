//! Content-addressed result cache: in-memory LRU with optional on-disk
//! JSONL persistence.
//!
//! The *content address* of a prediction is the FNV-1a 64-bit hash of a
//! canonical string spelling out everything the answer depends on: every
//! field of the derived [`GpuConfig`](gsim_sim::GpuConfig)s (so changing
//! a simulator default silently invalidates old entries), the normalized
//! workload/pattern spec, the scale-model sizes, the targets and the
//! memory miniature. The canonical string itself is persisted next to
//! the body, which makes the on-disk file self-validating: keys are
//! re-derived on load, never trusted.
//!
//! Persistence is an append-only `predictions.jsonl` under the cache
//! directory — one `{"schema", "canonical", "body"}` object per line,
//! rewritten compacted only when eviction would otherwise let the file
//! grow without bound. Unparseable lines are skipped, not fatal: a
//! truncated tail (crash mid-append) must not brick the server.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use gsim_json::{obj, Json};

/// Schema tag of one persisted cache line.
const LINE_SCHEMA: &str = "gsim-serve-cache-v1";
/// File name inside the cache directory.
const FILE_NAME: &str = "predictions.jsonl";

/// FNV-1a 64-bit over `bytes` — the content-address hash. Stable across
/// platforms and releases by construction.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Entry {
    canonical: String,
    body: Arc<String>,
    last_used: u64,
}

struct Lru {
    map: HashMap<u64, Entry>,
    capacity: usize,
    clock: u64,
    /// Lines appended to disk since the last compaction.
    appended: usize,
}

/// The shared result cache.
pub struct ResultCache {
    inner: Mutex<Lru>,
    /// Persistence root; `None` disables the disk tier.
    dir: Option<PathBuf>,
}

impl ResultCache {
    /// An in-memory cache of at most `capacity` entries; when `dir` is
    /// given, existing entries are loaded from it and new entries are
    /// appended to it.
    ///
    /// # Errors
    ///
    /// Returns an error if the cache directory cannot be created or its
    /// existing file cannot be read (individual bad lines are skipped).
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> io::Result<Self> {
        let mut lru = Lru {
            map: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            appended: 0,
        };
        if let Some(dir) = &dir {
            std::fs::create_dir_all(dir)?;
            let path = dir.join(FILE_NAME);
            if path.exists() {
                load_file(&path, &mut lru)?;
            }
        }
        Ok(Self {
            inner: Mutex::new(lru),
            dir,
        })
    }

    /// The body cached under `key`, marking it most-recently used.
    pub fn get(&self, key: u64) -> Option<Arc<String>> {
        let mut lru = self.lock();
        lru.clock += 1;
        let clock = lru.clock;
        let entry = lru.map.get_mut(&key)?;
        entry.last_used = clock;
        Some(Arc::clone(&entry.body))
    }

    /// Inserts `body` under `key` (which the caller derived as
    /// `fnv1a(canonical)`), evicting the least-recently-used entry when
    /// full, and appends to the persistence file when one is configured.
    pub fn put(&self, key: u64, canonical: &str, body: Arc<String>) {
        debug_assert_eq!(key, fnv1a(canonical.as_bytes()), "key must address content");
        let mut lru = self.lock();
        lru.clock += 1;
        let clock = lru.clock;
        if !lru.map.contains_key(&key) && lru.map.len() >= lru.capacity {
            if let Some(&victim) = lru
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k)
            {
                lru.map.remove(&victim);
            }
        }
        let fresh = lru
            .map
            .insert(
                key,
                Entry {
                    canonical: canonical.to_string(),
                    body: Arc::clone(&body),
                    last_used: clock,
                },
            )
            .is_none();
        if let (true, Some(dir)) = (fresh, &self.dir) {
            if let Err(e) = self.persist(dir, &mut lru, canonical, &body) {
                eprintln!("gsim-serve: cache persistence failed: {e}");
            }
        }
    }

    /// Number of entries currently held in memory.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Lru> {
        self.inner.lock().expect("cache lock poisoned")
    }

    fn persist(&self, dir: &Path, lru: &mut Lru, canonical: &str, body: &str) -> io::Result<()> {
        let path = dir.join(FILE_NAME);
        // Compact instead of appending once the file holds twice the
        // capacity in stale + live lines.
        if lru.appended + lru.map.len() > 2 * lru.capacity {
            let mut f = File::create(&path)?;
            for e in lru.map.values() {
                writeln!(f, "{}", line_json(&e.canonical, &e.body).render())?;
            }
            lru.appended = 0;
            return Ok(());
        }
        let mut f = OpenOptions::new().create(true).append(true).open(&path)?;
        writeln!(f, "{}", line_json(canonical, body).render())?;
        lru.appended += 1;
        Ok(())
    }
}

/// A bounded LRU of request bodies the service has already rejected
/// with a `400` parse/validation verdict, keyed by `fnv1a` of the raw
/// body bytes. Re-submitting a byte-identical bad request skips the
/// parser entirely and replays the stored message.
///
/// Only *deterministic* rejections belong here: a 400 verdict depends on
/// nothing but the bytes. A `404` (trace not found) must never be
/// negative-cached — the trace may be uploaded a second later. Memory
/// only; verdicts are cheap to re-derive after a restart.
pub struct NegativeCache {
    inner: Mutex<NegLru>,
}

struct NegLru {
    map: HashMap<u64, (u64, Arc<String>)>,
    capacity: usize,
    clock: u64,
}

impl NegativeCache {
    /// A cache of at most `capacity` verdicts (clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(NegLru {
                map: HashMap::new(),
                capacity: capacity.max(1),
                clock: 0,
            }),
        }
    }

    /// The stored 400 message for a body hashing to `key`, if any.
    pub fn get(&self, key: u64) -> Option<Arc<String>> {
        let mut lru = self.lock();
        lru.clock += 1;
        let clock = lru.clock;
        let (last_used, message) = lru.map.get_mut(&key)?;
        *last_used = clock;
        Some(Arc::clone(message))
    }

    /// Records that a body hashing to `key` was rejected with `message`.
    pub fn put(&self, key: u64, message: &str) {
        let mut lru = self.lock();
        lru.clock += 1;
        let clock = lru.clock;
        if !lru.map.contains_key(&key) && lru.map.len() >= lru.capacity {
            if let Some(&victim) = lru
                .map
                .iter()
                .min_by_key(|(_, (last_used, _))| *last_used)
                .map(|(k, _)| k)
            {
                lru.map.remove(&victim);
            }
        }
        lru.map.insert(key, (clock, Arc::new(message.to_string())));
    }

    /// Number of verdicts currently held.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// Whether no verdicts are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, NegLru> {
        self.inner.lock().expect("negative cache lock poisoned")
    }
}

fn line_json(canonical: &str, body: &str) -> Json {
    obj([
        ("schema", Json::from(LINE_SCHEMA)),
        ("canonical", Json::from(canonical)),
        ("body", Json::from(body)),
    ])
}

fn load_file(path: &Path, lru: &mut Lru) -> io::Result<()> {
    let reader = BufReader::new(File::open(path)?);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let Ok(doc) = gsim_json::parse(&line) else {
            continue; // torn tail from a crash mid-append
        };
        if doc.get("schema").and_then(Json::as_str) != Some(LINE_SCHEMA) {
            continue;
        }
        let (Some(canonical), Some(body)) = (
            doc.get("canonical").and_then(Json::as_str),
            doc.get("body").and_then(Json::as_str),
        ) else {
            continue;
        };
        // Self-validating: the key is re-derived, never stored.
        let key = fnv1a(canonical.as_bytes());
        lru.clock += 1;
        let clock = lru.clock;
        if lru.map.len() < lru.capacity || lru.map.contains_key(&key) {
            lru.map.insert(
                key,
                Entry {
                    canonical: canonical.to_string(),
                    body: Arc::new(body.to_string()),
                    last_used: clock,
                },
            );
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("gsim-serve-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fnv1a_known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResultCache::new(2, None).unwrap();
        let key = |s: &str| fnv1a(s.as_bytes());
        cache.put(key("a"), "a", Arc::new("A".into()));
        cache.put(key("b"), "b", Arc::new("B".into()));
        assert_eq!(cache.get(key("a")).unwrap().as_str(), "A"); // refresh a
        cache.put(key("c"), "c", Arc::new("C".into())); // evicts b
        assert!(cache.get(key("b")).is_none());
        assert_eq!(cache.get(key("a")).unwrap().as_str(), "A");
        assert_eq!(cache.get(key("c")).unwrap().as_str(), "C");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn persists_and_reloads_across_instances() {
        let dir = tmpdir("reload");
        let key = fnv1a(b"req-1");
        {
            let cache = ResultCache::new(8, Some(dir.clone())).unwrap();
            cache.put(key, "req-1", Arc::new("{\"x\": 1}".into()));
        }
        let cache = ResultCache::new(8, Some(dir.clone())).unwrap();
        assert_eq!(cache.get(key).unwrap().as_str(), "{\"x\": 1}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_lines_are_skipped_on_load() {
        let dir = tmpdir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let good = line_json("req-ok", "BODY").render();
        std::fs::write(
            dir.join(FILE_NAME),
            format!("{good}\nnot json at all\n{{\"schema\": \"other\"}}\n{{\"trunc"),
        )
        .unwrap();
        let cache = ResultCache::new(8, Some(dir.clone())).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(fnv1a(b"req-ok")).unwrap().as_str(), "BODY");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn negative_cache_remembers_and_evicts() {
        let neg = NegativeCache::new(2);
        let key = |s: &str| fnv1a(s.as_bytes());
        assert!(neg.get(key("bad-a")).is_none());
        neg.put(key("bad-a"), "unknown field: wat");
        neg.put(key("bad-b"), "size must double");
        assert_eq!(
            neg.get(key("bad-a")).unwrap().as_str(),
            "unknown field: wat"
        );
        neg.put(key("bad-c"), "targets empty"); // evicts bad-b (LRU)
        assert!(neg.get(key("bad-b")).is_none());
        assert_eq!(
            neg.get(key("bad-a")).unwrap().as_str(),
            "unknown field: wat"
        );
        assert_eq!(neg.get(key("bad-c")).unwrap().as_str(), "targets empty");
        assert_eq!(neg.len(), 2);
    }

    #[test]
    fn compaction_bounds_the_file() {
        let dir = tmpdir("compact");
        let cache = ResultCache::new(2, Some(dir.clone())).unwrap();
        for i in 0..20 {
            let canonical = format!("req-{i}");
            cache.put(
                fnv1a(canonical.as_bytes()),
                &canonical,
                Arc::new(format!("B{i}")),
            );
        }
        let lines = std::fs::read_to_string(dir.join(FILE_NAME))
            .unwrap()
            .lines()
            .count();
        assert!(lines <= 2 * 2 + 1, "file not compacted: {lines} lines");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
