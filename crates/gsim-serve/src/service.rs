//! The prediction service: request normalization, content addressing,
//! single-flight computation on the runner pool, and the HTTP router.
//!
//! # Endpoints
//!
//! | Route               | Meaning                                        |
//! |---------------------|------------------------------------------------|
//! | `GET /healthz`      | liveness probe                                 |
//! | `GET /v1/workloads` | the Table II / Table IV workload catalog       |
//! | `POST /v1/predict`  | run scale models, predict the target           |
//! | `POST /v1/traces`   | upload a trace into the content-addressed store|
//! | `GET /v1/traces`    | list stored traces                             |
//! | `GET /metrics`      | counters, cache stats, latency quantiles       |
//! | `POST /v1/shutdown` | trigger cooperative shutdown                   |
//!
//! # Trace-driven prediction
//!
//! `POST /v1/traces` ingests a GSTR trace (format v1 or v2) into a
//! [`gsim_tracestore::TraceStore`]; the returned `ref` is the trace's
//! *semantic hash* — a content address over the decoded instruction
//! streams, identical for any encoding of the same workload. A predict
//! request may then name `trace_ref` instead of a workload or pattern.
//!
//! Because synthetic predicts key their intermediate results (the two
//! scale-model observations and the miss-rate curve) by the same
//! semantic hash in an in-memory *stage cache*, a trace predict whose
//! content matches an already-predicted synthetic workload reuses both
//! stages and schedules **zero** timing simulations; a cold trace
//! predict runs exactly the two scale models plus the functional MRC
//! replay.
//!
//! # The staged fast path
//!
//! A predict request may carry `"path": "auto" | "fast" | "full"`
//! (default `auto`). Unless forced onto the full path, the service runs
//! the staged **collect → fit → predict** pipeline from
//! [`gsim_core::plan`]: a sampled, sharded Stage-1 collection measures
//! the miss-rate curve and the workload's compute intensity in
//! milliseconds; a memory-bound workload (measured pressure at or above
//! the configured gate) is then answered from roofline-synthesized
//! observations plus that curve — **zero timing simulations** — while a
//! compute-sensitive one escalates to the full path, whose body is
//! byte-identical to a forced-`full` request's. Every stage is cached
//! by the workload's semantic hash plus a stage tag, so repeat requests
//! over the same content (different targets, a trace of the same
//! workload) skip straight to Stage 3. The chosen path travels in the
//! `X-Gsim-Path` response header (`fast` / `full` / `degraded`).
//!
//! # Determinism contract
//!
//! A prediction body contains only deterministic quantities (IPC, MPKI,
//! `f_mem`, cycles, model outputs) rendered through `gsim-json`'s
//! deterministic writer — never wall-clock measurements. Identical
//! requests therefore produce *byte-identical* bodies, which is what
//! makes content-addressed caching sound. Cache status travels in the
//! `X-Gsim-Cache` response header (`hit` / `miss` / `coalesced`), not
//! the body.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use gsim_core::oneshot::{predict_targets, Observation};
use gsim_core::plan::{
    collect_sampled, synthesize_observation, CollectFailure, Collected, Fit, PlanWorkload,
    SampledCollectConfig, STAGE_COLLECT_SAMPLED, STAGE_FIT,
};
use gsim_json::{obj, Json};
use gsim_multigpu::{scaling_efficiency, Placement, Topology};
use gsim_runner::{Job, JobStatus, RunOverrides, Runner, RunnerConfig};
use gsim_sim::{collect_mrc, GpuConfig};
use gsim_trace::suite::{strong_benchmark, strong_suite};
use gsim_trace::weak::{weak_benchmark, weak_suite};
use gsim_trace::{Kernel, MemScale, PatternKind, PatternSpec, Workload};
use gsim_tracestore::{StoreConfig, StoreError, StoreStats, TraceMeta, TraceStore};

use crate::cache::{fnv1a, NegativeCache, ResultCache};
use crate::http::{Request, Response, ShutdownFlag};
use crate::metrics::{Metrics, RunnerJobCounter};
use crate::overload::{retry_after_secs, AdmissionGate, EndpointClass};
use crate::singleflight::{Role, SingleFlight};

/// Response-body schema tag.
const PREDICT_SCHEMA: &str = "gsim-serve-predict-v1";
/// Schema tag of the degraded (MRC-only) predict body.
const PREDICT_DEGRADED_SCHEMA: &str = "gsim-serve-predict-degraded-v1";
/// Schema tag of the functional-first fast-path predict body.
const PREDICT_FAST_SCHEMA: &str = "gsim-serve-predict-fast-v1";
/// Per-request deadline header (milliseconds; overrides the configured
/// default; `0` disables the deadline for this request).
const DEADLINE_HEADER: &str = "x-gsim-deadline-ms";
/// Capacity of the negative (400-verdict) cache.
const NEGATIVE_CACHE_CAPACITY: usize = 256;
/// Largest accepted request body for `/v1/predict`.
const MAX_PREDICT_BYTES: usize = 64 * 1024;
/// Largest accepted target system size.
const MAX_TARGET_SMS: u32 = 1 << 20;

/// Service construction knobs.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Worker threads of the simulation runner pool (0 = auto).
    pub runner_threads: usize,
    /// In-memory cache capacity in entries (0 = default 256).
    pub cache_capacity: usize,
    /// Persistence directory for the result cache (`None` = memory only).
    pub cache_dir: Option<PathBuf>,
    /// Root of the content-addressed trace store. `None` derives
    /// `<cache_dir>/tracestore`, or a per-process temp directory when
    /// there is no cache dir either (uploads then live for the process).
    pub trace_store_dir: Option<PathBuf>,
    /// Byte budget for stored trace blobs (0 = default 1 GiB).
    pub trace_store_bytes: u64,
    /// Default predict deadline in milliseconds; `0` means none. A
    /// request's `X-Gsim-Deadline-Ms` header overrides it either way.
    pub default_deadline_ms: u64,
    /// Concurrent `POST /v1/predict` requests admitted before shedding
    /// with 429 (0 = default 8).
    pub max_inflight_predicts: usize,
    /// Concurrent cheap requests (catalogs, uploads, metrics) admitted
    /// before shedding (0 = default 64).
    pub max_inflight_cheap: usize,
    /// Predict leaders concurrently inside the simulation pool beyond
    /// which new MRC-capable predicts degrade to the MRC-only fast path
    /// (0 = half the predict budget).
    pub degrade_threshold: usize,
    /// Compute-intensity gate of the functional-first fast path, as a
    /// multiple of the machine's DRAM balance point: an `"auto"` request
    /// whose measured memory pressure meets this threshold is answered
    /// from replayed-MRC fits alone, with zero timing simulations
    /// (0 = default 1.0; `f64::INFINITY` escalates every `"auto"`).
    pub fast_path_gate: f64,
}

/// A client-visible error: HTTP status plus message. Cloneable so
/// single-flight followers can share the leader's failure.
#[derive(Debug, Clone)]
pub struct ApiError {
    /// HTTP status to respond with.
    pub status: u16,
    /// Human-readable explanation, sent as `{"error": ...}`.
    pub message: String,
}

impl ApiError {
    fn bad(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    fn internal(message: impl Into<String>) -> Self {
        Self {
            status: 500,
            message: message.into(),
        }
    }

    fn response(&self) -> Response {
        let body = obj([("error", Json::from(self.message.as_str()))]).render();
        Response::json(self.status, body)
    }
}

/// What one prediction flight publishes to its followers.
type Outcome = Result<Arc<String>, ApiError>;

/// The fully validated, normalized form of one predict request.
#[derive(Debug)]
struct Plan {
    /// Canonical content-address string (normalized request + full
    /// derived config encodings).
    canonical: String,
    /// Normalized request document, echoed in the response.
    normalized: Json,
    /// Simulation inputs per scale model.
    kind: PlanKind,
    small: u32,
    large: u32,
    targets: Vec<u32>,
    scale: MemScale,
    /// The whole doubling ladder from `small` through the largest
    /// target — the MRC probe sizes.
    ladder: Vec<u32>,
    /// The workload's semantic hash, when already known at parse time
    /// (trace-driven plans: the trace reference *is* the hash).
    semantic: Option<u64>,
    /// Which prediction path the request asked for.
    path: PathMode,
    /// Multi-GPU system extension, when requested (DESIGN.md §16).
    system: Option<SystemPlan>,
}

/// The multi-GPU extension of a predict request: forecasts are scaled
/// from one GPU to `n_gpus` by the analytic fabric-efficiency model
/// under the requested placement policy. Participates in the normalized
/// request (and hence the content address) only when requested, so
/// single-GPU canonicals are unchanged.
#[derive(Debug, Clone, Copy)]
struct SystemPlan {
    n_gpus: u32,
    placement: Placement,
}

/// Fabric assumptions for the serve-side analytic multi-GPU scaling —
/// the `SystemConfig::paper_node` defaults: a ring of 300 GB/s
/// NVLink-class links.
const SYSTEM_LINK_GBS: f64 = 300.0;
/// Store share assumed when scaling read-replication placements (the
/// service has no per-workload store mix at forecast time).
const SYSTEM_WRITE_FRACTION: f64 = 0.2;

/// How a predict request wants its answer computed. Part of the content
/// address (`|path=…` suffix) but deliberately *not* of the normalized
/// echo, so an escalated `"auto"` body is byte-identical to a forced
/// `"full"` one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathMode {
    /// Gate on measured compute intensity: fast when memory-bound,
    /// escalate to timing simulations otherwise (the default).
    Auto,
    /// Force the functional-first fast path (rejected for plans without
    /// a miss-rate curve).
    Fast,
    /// Force the full timing-simulation path.
    Full,
}

impl PathMode {
    fn as_str(self) -> &'static str {
        match self {
            Self::Auto => "auto",
            Self::Fast => "fast",
            Self::Full => "full",
        }
    }
}

#[derive(Debug)]
enum PlanKind {
    /// Fixed workload at every size; the miss-rate curve matters
    /// (strong-scaling benchmarks, synthetic patterns, and traces).
    WithMrc(PlanWorkload),
    /// Input grows with the machine; no MRC (weak scaling, Table IV).
    PerSize {
        small_wl: Workload,
        large_wl: Workload,
    },
}

/// Functional-replay MPKI of a [`PlanWorkload`] at each config's LLC
/// capacity, in order — the exact (full-path) miss-rate curve.
fn mrc_mpki(wl: &PlanWorkload, configs: &[GpuConfig]) -> Vec<f64> {
    collect_mrc(wl, configs)
        .points()
        .iter()
        .map(|p| p.mpki)
        .collect()
}

/// Deterministic intermediate results keyed by `(semantic hash, stage
/// tag + derived config encodings)`. Every stage is a pure function of
/// the workload's instruction streams and the GPU configs, so a
/// synthetic workload and a trace of it share entries — which is what
/// lets a trace-driven predict skip the timing simulator entirely when
/// the synthetic path already ran (and vice versa).
#[derive(Default)]
struct StageCache {
    /// `(hash, small|large config)` → the two scale-model observations.
    observations: Mutex<HashMap<StageKey, (SimPoint, SimPoint)>>,
    /// `(hash, ladder configs)` → `(size, mpki)` miss-rate-curve points.
    mrcs: Mutex<HashMap<StageKey, Vec<(u32, f64)>>>,
    /// `(hash, collect tag + ladder configs)` → the sampled Stage-1
    /// collection of the staged fast path.
    collects: Mutex<HashMap<StageKey, Collected>>,
    /// `(hash, fit tag + ladder configs)` → the Stage-2 predictor fits
    /// of the staged fast path.
    fits: Mutex<HashMap<StageKey, Fit>>,
}

/// Stage-cache key: the workload's semantic hash plus the exhaustive
/// encoding of every config involved in the stage.
type StageKey = (u64, String);

/// One scale-model simulation's deterministic outputs.
#[derive(Debug, Clone)]
struct SimPoint {
    size: u32,
    ipc: f64,
    mpki: f64,
    f_mem: f64,
    cycles: u64,
}

/// What one runner job returns.
enum SimOut {
    Point(SimPoint),
    Mrc(Vec<(u32, f64)>),
}

/// The shared prediction service. Construct once, share behind `Arc`
/// with the HTTP server's handler.
pub struct PredictService {
    runner: Runner,
    cache: ResultCache,
    negative: NegativeCache,
    flights: SingleFlight<Outcome>,
    metrics: Arc<Metrics>,
    store: TraceStore,
    stages: StageCache,
    shutdown: ShutdownFlag,
    gate: AdmissionGate,
    default_deadline_ms: u64,
    degrade_threshold: i64,
    fast_path_gate: f64,
}

impl PredictService {
    /// Builds the service: runner pool, cache (loading any persisted
    /// entries), trace store, metrics.
    ///
    /// # Errors
    ///
    /// Returns an error if the cache or trace-store directory cannot be
    /// prepared.
    pub fn new(cfg: ServeConfig, shutdown: ShutdownFlag) -> std::io::Result<Arc<Self>> {
        let metrics = Arc::new(Metrics::default());
        let runner = Runner::new(RunnerConfig {
            threads: cfg.runner_threads,
            timeout: None, // big simulations are legitimate, never kill them
            retry_once: true,
        })
        .with_sink(RunnerJobCounter(Arc::clone(&metrics)));
        let capacity = if cfg.cache_capacity == 0 {
            256
        } else {
            cfg.cache_capacity
        };
        let store_root = cfg
            .trace_store_dir
            .clone()
            .unwrap_or_else(|| match &cfg.cache_dir {
                Some(dir) => dir.join("tracestore"),
                None => std::env::temp_dir()
                    .join(format!("gsim-serve-tracestore-{}", std::process::id())),
            });
        let store = TraceStore::open(
            store_root,
            StoreConfig {
                max_bytes: if cfg.trace_store_bytes == 0 {
                    1 << 30
                } else {
                    cfg.trace_store_bytes
                },
                ..StoreConfig::default()
            },
        )?;
        let max_heavy = if cfg.max_inflight_predicts == 0 {
            8
        } else {
            cfg.max_inflight_predicts
        };
        let max_cheap = if cfg.max_inflight_cheap == 0 {
            64
        } else {
            cfg.max_inflight_cheap
        };
        let degrade_threshold = if cfg.degrade_threshold == 0 {
            (max_heavy / 2).max(1)
        } else {
            cfg.degrade_threshold
        };
        Ok(Arc::new(Self {
            runner,
            cache: ResultCache::new(capacity, cfg.cache_dir)?,
            negative: NegativeCache::new(NEGATIVE_CACHE_CAPACITY),
            flights: SingleFlight::new(),
            metrics: Arc::clone(&metrics),
            store,
            stages: StageCache::default(),
            shutdown,
            gate: AdmissionGate::new(max_cheap, max_heavy),
            default_deadline_ms: cfg.default_deadline_ms,
            degrade_threshold: i64::try_from(degrade_threshold).unwrap_or(i64::MAX),
            fast_path_gate: if cfg.fast_path_gate == 0.0 {
                1.0
            } else {
                cfg.fast_path_gate
            },
        }))
    }

    /// The service's metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// The service's trace store (shared with `POST /v1/traces`).
    pub fn trace_store(&self) -> &TraceStore {
        &self.store
    }

    /// The HTTP router: the function handed to [`crate::http::Server`].
    pub fn handle(&self, req: &Request) -> Response {
        let started = Instant::now();
        self.metrics.in_flight.fetch_add(1, Ordering::Relaxed);
        let resp = self.route(req);
        self.metrics.in_flight.fetch_sub(1, Ordering::Relaxed);
        self.metrics.observe_latency(started.elapsed());
        resp
    }

    fn route(&self, req: &Request) -> Response {
        let bump = |c: &std::sync::atomic::AtomicU64| c.fetch_add(1, Ordering::Relaxed);
        match (req.method.as_str(), req.path.as_str()) {
            ("GET", "/healthz") => {
                bump(&self.metrics.healthz);
                Response::json(200, obj([("status", Json::from("ok"))]).render())
            }
            ("GET", "/v1/workloads") => {
                bump(&self.metrics.workloads);
                self.cheap(|| Response::json(200, workloads_json().render()))
            }
            ("POST", "/v1/predict") => {
                bump(&self.metrics.predict);
                self.predict(req)
            }
            ("POST", "/v1/traces") => {
                bump(&self.metrics.traces);
                self.cheap(|| self.trace_upload(&req.body))
            }
            ("GET", "/v1/traces") => {
                bump(&self.metrics.traces);
                self.cheap(|| self.trace_list())
            }
            ("GET", "/metrics") => {
                bump(&self.metrics.metrics);
                self.cheap(|| {
                    let store = store_stats_json(&self.store.stats());
                    let doc = self
                        .metrics
                        .to_json(self.cache.len(), store, self.admission_json());
                    Response::json(200, doc.render())
                })
            }
            ("POST", "/v1/shutdown") => {
                bump(&self.metrics.shutdown);
                self.shutdown.trigger();
                Response::json(200, obj([("status", Json::from("shutting-down"))]).render())
            }
            (
                _,
                "/healthz" | "/v1/workloads" | "/v1/predict" | "/v1/traces" | "/metrics"
                | "/v1/shutdown",
            ) => {
                bump(&self.metrics.other);
                ApiError {
                    status: 405,
                    message: "method not allowed".into(),
                }
                .response()
            }
            _ => {
                bump(&self.metrics.other);
                ApiError {
                    status: 404,
                    message: "no such route".into(),
                }
                .response()
            }
        }
    }

    /// `POST /v1/traces`: validate and ingest a trace upload (raw GSTR
    /// bytes, v1 or v2) into the content-addressed store.
    fn trace_upload(&self, body: &[u8]) -> Response {
        if body.is_empty() {
            return ApiError::bad("empty trace upload; send the raw .gstr bytes").response();
        }
        match self.store.ingest_bytes(body) {
            Ok((meta, dedup)) => {
                let mut doc = vec![("schema", Json::from("gsim-serve-trace-v1"))];
                doc.extend(trace_meta_fields(&meta));
                doc.push(("deduplicated", Json::from(dedup)));
                Response::json(200, obj(doc).render())
                    .with_header("X-Gsim-Trace", if dedup { "dedup" } else { "new" })
            }
            Err(StoreError::Invalid(e)) => ApiError::bad(format!("invalid trace: {e}")).response(),
            Err(e) => ApiError::internal(format!("trace store failure: {e}")).response(),
        }
    }

    /// `GET /v1/traces`: the stored-trace catalog, oldest first.
    fn trace_list(&self) -> Response {
        let traces: Vec<Json> = self
            .store
            .list()
            .iter()
            .map(|m| obj(trace_meta_fields(m)))
            .collect();
        let body = obj([
            ("schema", Json::from("gsim-serve-traces-v1")),
            ("traces", Json::Arr(traces)),
        ]);
        Response::json(200, body.render())
    }

    /// Runs a cheap-class request under its admission budget, shedding
    /// with a one-second `Retry-After` when it is exhausted (cheap work
    /// clears in microseconds; one second is already generous).
    fn cheap(&self, f: impl FnOnce() -> Response) -> Response {
        match self.gate.try_admit(EndpointClass::Cheap) {
            Some(_permit) => f(),
            None => {
                self.metrics.shed_cheap.fetch_add(1, Ordering::Relaxed);
                shed_response(1, "request budget exhausted; retry shortly")
            }
        }
    }

    /// The `overload.admission` group of the `/metrics` document.
    fn admission_json(&self) -> Json {
        obj([
            (
                "limit_cheap",
                Json::from(self.gate.limit(EndpointClass::Cheap)),
            ),
            (
                "limit_heavy",
                Json::from(self.gate.limit(EndpointClass::Heavy)),
            ),
            (
                "inflight_cheap",
                Json::from(self.gate.inflight(EndpointClass::Cheap)),
            ),
            (
                "inflight_heavy",
                Json::from(self.gate.inflight(EndpointClass::Heavy)),
            ),
        ])
    }

    /// The request's deadline instant: the `X-Gsim-Deadline-Ms` header
    /// when present, else the configured default; `None` when disabled.
    fn deadline_of(&self, req: &Request) -> Result<Option<Instant>, ApiError> {
        let ms = match req.header(DEADLINE_HEADER) {
            Some(v) => v.trim().parse::<u64>().map_err(|_| {
                ApiError::bad("X-Gsim-Deadline-Ms must be an integer number of milliseconds")
            })?,
            None => self.default_deadline_ms,
        };
        Ok((ms > 0).then(|| Instant::now() + Duration::from_millis(ms)))
    }

    /// `POST /v1/predict`: admit (or shed), normalize, address, then hit
    /// the cache, join an identical in-flight computation, or lead a new
    /// one — degrading to the MRC-only fast path when the simulation
    /// pool is saturated, and abandoning work past its deadline.
    fn predict(&self, req: &Request) -> Response {
        let fail = || {
            self.metrics.predict_errors.fetch_add(1, Ordering::Relaxed);
        };
        let deadline = match self.deadline_of(req) {
            Ok(d) => d,
            Err(e) => {
                fail();
                return e.response();
            }
        };
        let Some(_permit) = self.gate.try_admit(EndpointClass::Heavy) else {
            self.metrics.shed_heavy.fetch_add(1, Ordering::Relaxed);
            fail();
            let secs = retry_after_secs(
                self.metrics.heavy_p50_us(),
                self.gate.inflight(EndpointClass::Heavy),
            );
            return shed_response(secs, "predict budget exhausted; service is at capacity");
        };
        // Byte-identical bodies we already rejected with 400 skip the
        // parser. Keyed on raw bytes: only deterministic verdicts
        // (never 404 trace-not-found) are stored below.
        let nkey = fnv1a(&req.body);
        if let Some(message) = self.negative.get(nkey) {
            self.metrics.negative_hits.fetch_add(1, Ordering::Relaxed);
            fail();
            return ApiError::bad(message.as_str()).response();
        }
        let plan = match parse_request(&req.body, Some(&self.store)) {
            Ok(plan) => plan,
            Err(e) => {
                if e.status == 400 {
                    self.negative.put(nkey, &e.message);
                }
                fail();
                return e.response();
            }
        };
        if matches!(plan.kind, PlanKind::WithMrc(PlanWorkload::Traced(_))) {
            self.metrics
                .predict_from_trace
                .fetch_add(1, Ordering::Relaxed);
        }
        let key = fnv1a(plan.canonical.as_bytes());
        if let Some(cached) = self.cache.get(key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            let path = path_of_body(&cached);
            return Response::json(200, cached.as_bytes().to_vec())
                .with_header("X-Gsim-Cache", "hit")
                .with_header("X-Gsim-Path", path);
        }
        match self.flights.join(key) {
            Role::Leader(promise) => {
                self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);
                self.metrics.computations.fetch_add(1, Ordering::Relaxed);
                let saturated =
                    self.metrics.sims_inflight.load(Ordering::Relaxed) >= self.degrade_threshold;
                let started = Instant::now();
                let outcome: Outcome = match self.compute(&plan, key, deadline, saturated) {
                    Ok((body, degraded)) => {
                        let body = Arc::new(body);
                        if degraded {
                            // A degraded body is an overload artifact,
                            // not the request's answer: publish it to
                            // the followers waiting right now, but never
                            // cache it as *the* result.
                            self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
                        } else {
                            self.cache.put(key, &plan.canonical, Arc::clone(&body));
                        }
                        Ok(body)
                    }
                    Err(e) => Err(e),
                };
                self.metrics.observe_heavy(started.elapsed());
                self.flights.publish(key, promise, outcome.clone());
                self.respond(outcome, "miss")
            }
            Role::Follower(handle) => {
                self.metrics.coalesced.fetch_add(1, Ordering::Relaxed);
                // Followers inherit the leader's work but keep their own
                // deadline: stop waiting when it passes.
                let waited = match deadline {
                    Some(d) => handle.wait_timeout(d.saturating_duration_since(Instant::now())),
                    None => handle.wait().map(Some),
                };
                match waited {
                    Ok(Some(outcome)) => self.respond((*outcome).clone(), "coalesced"),
                    Ok(None) => {
                        self.metrics
                            .deadline_timeouts
                            .fetch_add(1, Ordering::Relaxed);
                        fail();
                        deadline_error().response()
                    }
                    Err(_) => {
                        fail();
                        ApiError::internal("prediction flight abandoned").response()
                    }
                }
            }
        }
    }

    fn respond(&self, outcome: Outcome, cache_status: &str) -> Response {
        match outcome {
            Ok(body) => {
                let path = path_of_body(&body);
                Response::json(200, body.as_bytes().to_vec())
                    .with_header("X-Gsim-Cache", cache_status)
                    .with_header("X-Gsim-Path", path)
            }
            Err(e) => {
                self.metrics.predict_errors.fetch_add(1, Ordering::Relaxed);
                let resp = e.response();
                if e.status == 503 {
                    // A transient failure: tell the client when a retry
                    // is likely to find a calmer pool.
                    let secs = retry_after_secs(
                        self.metrics.heavy_p50_us(),
                        self.gate.inflight(EndpointClass::Heavy),
                    );
                    resp.with_header("Retry-After", secs.to_string())
                } else {
                    resp
                }
            }
        }
    }

    /// Computes one prediction, dispatching between the staged
    /// functional-first fast path and the full timing-simulation path.
    ///
    /// MRC-capable plans not forced onto the full path run the sampled
    /// Stage-1 collection first (stage-cached, sharded across the pool)
    /// and consult the compute-intensity gate: memory-bound workloads
    /// are answered from replayed-MRC fits alone in milliseconds;
    /// compute-sensitive ones escalate to [`Self::compute_full`], whose
    /// body is byte-identical to a forced-full computation.
    fn compute(
        &self,
        plan: &Plan,
        key: u64,
        deadline: Option<Instant>,
        degrade: bool,
    ) -> Result<(String, bool), ApiError> {
        if let PlanKind::WithMrc(wl) = &plan.kind {
            if plan.path != PathMode::Full {
                let sem = plan.semantic.unwrap_or_else(|| wl.semantic_hash());
                let collected = self.stage_collect(sem, plan, wl, deadline, degrade)?;
                let gate_cfg = GpuConfig::paper_target(plan.large, plan.scale);
                let pressure = collected.memory_pressure(&gate_cfg);
                if plan.path == PathMode::Fast || pressure >= self.fast_path_gate {
                    self.metrics.fast_path.fetch_add(1, Ordering::Relaxed);
                    return Ok((self.fast_body(plan, sem, &collected, pressure)?, false));
                }
                // Compute matters: the roofline synthesis is not
                // trustworthy, fall through to the real simulations.
                self.metrics.escalated.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.compute_full(plan, key, deadline, degrade)
    }

    /// Stage 1 of the staged path: the sampled sharded collection,
    /// consulted from (and inserted into) the stage cache. Sharded
    /// across the runner pool normally; computed serially on the
    /// request's own thread when the pool is saturated (`serial`) — the
    /// results are bit-identical either way, so the cache key does not
    /// care.
    fn stage_collect(
        &self,
        sem: u64,
        plan: &Plan,
        wl: &PlanWorkload,
        deadline: Option<Instant>,
        serial: bool,
    ) -> Result<Collected, ApiError> {
        let scfg = SampledCollectConfig::default();
        let stage_key = (
            sem,
            format!(
                "{STAGE_COLLECT_SAMPLED}:{}|{}",
                scfg.cache_tag(),
                collect_ladder_encoding(plan)
            ),
        );
        if let Some(c) = self
            .stages
            .collects
            .lock()
            .expect("stage cache poisoned")
            .get(&stage_key)
            .cloned()
        {
            self.metrics
                .stage_collect_hits
                .fetch_add(1, Ordering::Relaxed);
            return Ok(c);
        }
        let overrides = match deadline {
            Some(d) => {
                let left = d.saturating_duration_since(Instant::now());
                if left.is_zero() {
                    self.metrics
                        .deadline_timeouts
                        .fetch_add(1, Ordering::Relaxed);
                    return Err(deadline_error());
                }
                RunOverrides::deadline(left)
            }
            None => RunOverrides::default(),
        };
        let configs: Vec<GpuConfig> = collect_ladder(plan)
            .iter()
            .map(|&s| GpuConfig::paper_target(s, plan.scale))
            .collect();
        self.metrics
            .collects_started
            .fetch_add(1, Ordering::Relaxed);
        let started = Instant::now();
        let pool = (!serial).then_some((&self.runner, overrides));
        let collected = collect_sampled(wl, &configs, &scfg, pool).map_err(|e| match e {
            CollectFailure::TimedOut => {
                self.metrics
                    .deadline_timeouts
                    .fetch_add(1, Ordering::Relaxed);
                deadline_error()
            }
            CollectFailure::Failed(msg) => ApiError {
                status: 503,
                message: format!("collection failed: {msg}; retry later"),
            },
        })?;
        Metrics::observe_stage(&self.metrics.stage_collect, started.elapsed());
        self.stages
            .collects
            .lock()
            .expect("stage cache poisoned")
            .entry(stage_key)
            .or_insert_with(|| collected.clone());
        Ok(collected)
    }

    /// Stages 2 and 3 of the fast path: fit the five predictors to
    /// roofline observations synthesized from the sampled collection
    /// (stage-cached), evaluate the targets, and render the fast body.
    fn fast_body(
        &self,
        plan: &Plan,
        sem: u64,
        collected: &Collected,
        pressure: f64,
    ) -> Result<String, ApiError> {
        let fit_key = (
            sem,
            format!(
                "{STAGE_FIT}:fast:{}|{}",
                SampledCollectConfig::default().cache_tag(),
                collect_ladder_encoding(plan)
            ),
        );
        let cached = self
            .stages
            .fits
            .lock()
            .expect("stage cache poisoned")
            .get(&fit_key)
            .cloned();
        let fit = match cached {
            Some(fit) => {
                self.metrics.stage_fit_hits.fetch_add(1, Ordering::Relaxed);
                fit
            }
            None => {
                let started = Instant::now();
                let small = synthesize_observation(
                    collected,
                    &GpuConfig::paper_target(plan.small, plan.scale),
                );
                let large = synthesize_observation(
                    collected,
                    &GpuConfig::paper_target(plan.large, plan.scale),
                );
                let mrc = collected.sized_mrc();
                let fit = Fit::new(small, large, Some(&mrc))
                    .map_err(|e| ApiError::bad(format!("prediction failed: {e}")))?;
                Metrics::observe_stage(&self.metrics.stage_fit, started.elapsed());
                self.stages
                    .fits
                    .lock()
                    .expect("stage cache poisoned")
                    .entry(fit_key)
                    .or_insert_with(|| fit.clone());
                fit
            }
        };
        let started = Instant::now();
        let forecast = fit
            .forecast(&plan.targets)
            .map_err(|e| ApiError::bad(format!("prediction failed: {e}")))?;
        Metrics::observe_stage(&self.metrics.stage_predict, started.elapsed());

        let obs_json = |o: &Observation| {
            obj([
                ("size", Json::from(o.size)),
                ("ipc", Json::from(o.ipc)),
                ("f_mem", Json::from(o.f_mem)),
            ])
        };
        let predictions = predictions_json(plan, &forecast, fit.large().f_mem);
        let body = obj([
            ("schema", Json::from(PREDICT_FAST_SCHEMA)),
            ("request", plan.normalized.clone()),
            ("fast_path", Json::from(true)),
            ("mrc_engine", Json::from("sampled")),
            ("memory_pressure", Json::from(pressure)),
            ("forced", Json::from(plan.path == PathMode::Fast)),
            (
                "scale_models",
                Json::Arr(vec![obs_json(&fit.small()), obs_json(&fit.large())]),
            ),
            (
                "mrc",
                Json::Arr(
                    collected
                        .points
                        .iter()
                        .map(|&(s, m)| Json::Arr(vec![Json::from(s), Json::from(m)]))
                        .collect(),
                ),
            ),
            ("correction_factor", Json::from(forecast.correction_factor)),
            ("cliff_at", Json::from(forecast.cliff_at)),
            ("predictions", Json::Arr(predictions)),
        ]);
        Ok(body.render())
    }

    /// Runs the scale-model simulations (and, for MRC plans, the
    /// functional replay) as jobs on the runner pool, then the one-shot
    /// predictor, and renders the response body.
    ///
    /// Strong-scaling plans first consult the [`StageCache`]: when both
    /// the observations and the miss-rate curve are cached under the
    /// workload's semantic hash, no jobs are scheduled at all — the
    /// path that makes a trace predict of an already-seen workload
    /// simulation-free.
    ///
    /// When `degrade` is set and the scale-model observations are not
    /// already staged, MRC-capable plans skip the timing simulations
    /// entirely and return the MRC-only degraded body; the returned
    /// flag tells the caller which body it got (degraded bodies are
    /// never result-cached). The `deadline` bounds the runner jobs; a
    /// run cut short maps to 504.
    fn compute_full(
        &self,
        plan: &Plan,
        key: u64,
        deadline: Option<Instant>,
        degrade: bool,
    ) -> Result<(String, bool), ApiError> {
        let cfg_of = |sms: u32| GpuConfig::paper_target(sms, plan.scale);
        let sim_job = |label: String, sms: u32, wl: PlanWorkload| {
            let cfg = cfg_of(sms);
            let metrics = Arc::clone(&self.metrics);
            Job::new(label, move || {
                if gsim_faults::active().is_some_and(|f| f.job_panic()) {
                    panic!("injected fault: simulation job panic");
                }
                metrics.timing_sims_started.fetch_add(1, Ordering::Relaxed);
                let stats = wl.simulate(cfg.clone());
                SimOut::Point(SimPoint {
                    size: sms,
                    ipc: stats.sustained_ipc(),
                    mpki: stats.mpki(),
                    f_mem: stats.f_mem(),
                    cycles: stats.cycles,
                })
            })
        };
        let mut jobs = Vec::new();
        let mut cached_obs: Option<(SimPoint, SimPoint)> = None;
        let mut mrc_points: Option<Vec<(u32, f64)>> = None;
        let mut stage_keys: Option<((u64, String), (u64, String))> = None;
        match &plan.kind {
            PlanKind::WithMrc(wl) => {
                let sem = plan.semantic.unwrap_or_else(|| wl.semantic_hash());
                let obs_key = (
                    sem,
                    format!(
                        "{}|{}",
                        encode_config(&cfg_of(plan.small)),
                        encode_config(&cfg_of(plan.large))
                    ),
                );
                let mrc_key = (sem, ladder_encoding(plan));
                cached_obs = self
                    .stages
                    .observations
                    .lock()
                    .expect("stage cache poisoned")
                    .get(&obs_key)
                    .cloned();
                mrc_points = self
                    .stages
                    .mrcs
                    .lock()
                    .expect("stage cache poisoned")
                    .get(&mrc_key)
                    .cloned();
                if degrade && cached_obs.is_none() {
                    // Saturated pool and no staged observations: answer
                    // with the functional-replay MRC alone, computed on
                    // this request's thread — no timing simulations.
                    let pts = match mrc_points {
                        Some(pts) => pts,
                        None => {
                            let configs: Vec<GpuConfig> =
                                plan.ladder.iter().map(|&s| cfg_of(s)).collect();
                            let pts: Vec<(u32, f64)> = plan
                                .ladder
                                .iter()
                                .copied()
                                .zip(mrc_mpki(wl, &configs))
                                .collect();
                            // Stage it: the eventual full predict (and
                            // any sibling degraded one) reuses it.
                            self.stages
                                .mrcs
                                .lock()
                                .expect("stage cache poisoned")
                                .entry(mrc_key)
                                .or_insert_with(|| pts.clone());
                            pts
                        }
                    };
                    return Ok((degraded_body(plan, &pts), true));
                }
                if cached_obs.is_some() {
                    self.metrics.stage_obs_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    jobs.push(sim_job(
                        format!("sim@{}sm", plan.small),
                        plan.small,
                        wl.clone(),
                    ));
                    jobs.push(sim_job(
                        format!("sim@{}sm", plan.large),
                        plan.large,
                        wl.clone(),
                    ));
                }
                if mrc_points.is_some() {
                    self.metrics.stage_mrc_hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    let mrc_wl = wl.clone();
                    let configs: Vec<GpuConfig> = plan.ladder.iter().map(|&s| cfg_of(s)).collect();
                    let sizes = plan.ladder.clone();
                    jobs.push(Job::new("mrc", move || {
                        SimOut::Mrc(
                            sizes
                                .iter()
                                .copied()
                                .zip(mrc_mpki(&mrc_wl, &configs))
                                .collect(),
                        )
                    }));
                }
                stage_keys = Some((obs_key, mrc_key));
            }
            PlanKind::PerSize { small_wl, large_wl } => {
                jobs.push(sim_job(
                    format!("sim@{}sm", plan.small),
                    plan.small,
                    PlanWorkload::Synthetic(small_wl.clone()),
                ));
                jobs.push(sim_job(
                    format!("sim@{}sm", plan.large),
                    plan.large,
                    PlanWorkload::Synthetic(large_wl.clone()),
                ));
            }
        }
        let mut points: Vec<SimPoint> = Vec::new();
        if let Some((a, b)) = cached_obs {
            points.push(a);
            points.push(b);
        }
        if !jobs.is_empty() {
            let overrides = match deadline {
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    if left.is_zero() {
                        self.metrics
                            .deadline_timeouts
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(deadline_error());
                    }
                    // A deadline-bound run must not retry: a retry would
                    // double the worst-case wall time past the promise.
                    RunOverrides::deadline(left)
                }
                None => RunOverrides::default(),
            };
            self.metrics.sims_inflight.fetch_add(1, Ordering::Relaxed);
            let reports = self
                .runner
                .run_with(&format!("predict-{key:016x}"), jobs, overrides);
            self.metrics.sims_inflight.fetch_sub(1, Ordering::Relaxed);
            for report in reports {
                let name = report.name.clone();
                let timed_out = matches!(report.status, JobStatus::TimedOut);
                match report.into_ok() {
                    Some(SimOut::Point(p)) => points.push(p),
                    Some(SimOut::Mrc(m)) => mrc_points = Some(m),
                    None if timed_out => {
                        self.metrics
                            .deadline_timeouts
                            .fetch_add(1, Ordering::Relaxed);
                        return Err(deadline_error());
                    }
                    None => {
                        // Crashed even after the runner's retry: the
                        // failure is transient (a panic, an injected
                        // fault), not a verdict on the request.
                        return Err(ApiError {
                            status: 503,
                            message: format!("job {name} failed; retry later"),
                        });
                    }
                }
            }
        }
        points.sort_by_key(|p| p.size);
        let [small, large] = points.as_slice() else {
            return Err(ApiError::internal("scale-model simulations missing"));
        };
        if let Some((obs_key, mrc_key)) = stage_keys {
            self.stages
                .observations
                .lock()
                .expect("stage cache poisoned")
                .entry(obs_key)
                .or_insert_with(|| (small.clone(), large.clone()));
            if let Some(pts) = &mrc_points {
                self.stages
                    .mrcs
                    .lock()
                    .expect("stage cache poisoned")
                    .entry(mrc_key)
                    .or_insert_with(|| pts.clone());
            }
        }
        let mrc = mrc_points
            .as_ref()
            .map(|pts| gsim_core::SizedMrc::new(pts.iter().copied()));
        let forecast = predict_targets(
            Observation {
                size: small.size,
                ipc: small.ipc,
                f_mem: small.f_mem,
            },
            Observation {
                size: large.size,
                ipc: large.ipc,
                f_mem: large.f_mem,
            },
            mrc.as_ref(),
            &plan.targets,
        )
        .map_err(|e| ApiError::bad(format!("prediction failed: {e}")))?;

        let point_json = |p: &SimPoint| {
            obj([
                ("size", Json::from(p.size)),
                ("ipc", Json::from(p.ipc)),
                ("mpki", Json::from(p.mpki)),
                ("f_mem", Json::from(p.f_mem)),
                ("cycles", Json::from(p.cycles)),
            ])
        };
        let predictions = predictions_json(plan, &forecast, large.f_mem);
        let body = obj([
            ("schema", Json::from(PREDICT_SCHEMA)),
            ("request", plan.normalized.clone()),
            (
                "scale_models",
                Json::Arr(vec![point_json(small), point_json(large)]),
            ),
            (
                "mrc",
                match &mrc_points {
                    Some(pts) => Json::Arr(
                        pts.iter()
                            .map(|&(s, m)| Json::Arr(vec![Json::from(s), Json::from(m)]))
                            .collect(),
                    ),
                    None => Json::Null,
                },
            ),
            ("correction_factor", Json::from(forecast.correction_factor)),
            ("cliff_at", Json::from(forecast.cliff_at)),
            ("predictions", Json::Arr(predictions)),
        ]);
        Ok((body.render(), false))
    }
}

/// Renders forecast targets as prediction rows. For multi-GPU plans the
/// per-GPU forecast is scaled to the system level: `n_gpus ×` the
/// analytic fabric efficiency of a ring of [`SYSTEM_LINK_GBS`] links at
/// the target's GPU config, with the large scale model's `f_mem` as the
/// memory-boundedness signal. Single-GPU plans pass through unscaled,
/// so pre-§16 bodies are byte-identical.
fn predictions_json(plan: &Plan, forecast: &gsim_core::Forecast, f_mem: f64) -> Vec<Json> {
    let system_scale = |target: u32| -> f64 {
        let Some(sys) = plan.system else { return 1.0 };
        let gpu = GpuConfig::paper_target(target, plan.scale);
        f64::from(sys.n_gpus)
            * scaling_efficiency(
                sys.n_gpus,
                sys.placement,
                Topology::Ring,
                &gpu,
                SYSTEM_LINK_GBS,
                f_mem,
                SYSTEM_WRITE_FRACTION,
            )
    };
    forecast
        .targets
        .iter()
        .map(|t| {
            let k = system_scale(t.target);
            obj([
                ("target", Json::from(t.target)),
                (
                    "ipc_by_method",
                    Json::Obj(
                        t.by_method
                            .iter()
                            .map(|m| (m.method.to_string(), Json::from(m.predicted_ipc * k)))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect()
}

/// A `429` with the computed `Retry-After`.
fn shed_response(retry_after_secs: u64, message: &str) -> Response {
    ApiError {
        status: 429,
        message: message.into(),
    }
    .response()
    .with_header("Retry-After", retry_after_secs.to_string())
}

/// The `504` for work cancelled at its deadline.
fn deadline_error() -> ApiError {
    ApiError {
        status: 504,
        message: "deadline exceeded before the prediction completed".into(),
    }
}

/// The MRC-only degraded body: the request echo, the functional-replay
/// miss-rate curve and its cliff — everything the memory miniature can
/// say without a timing simulation. Marked `"degraded": true` and tagged
/// with its own schema; deliberately free of `predictions`.
fn degraded_body(plan: &Plan, pts: &[(u32, f64)]) -> String {
    let mrc = gsim_core::SizedMrc::new(pts.iter().copied());
    let cliff_at = gsim_core::detect_cliff(&mrc).map(|i| mrc.points()[i + 1].0);
    obj([
        ("schema", Json::from(PREDICT_DEGRADED_SCHEMA)),
        ("request", plan.normalized.clone()),
        ("degraded", Json::from(true)),
        (
            "mrc",
            Json::Arr(
                pts.iter()
                    .map(|&(s, m)| Json::Arr(vec![Json::from(s), Json::from(m)]))
                    .collect(),
            ),
        ),
        ("cliff_at", Json::from(cliff_at)),
    ])
    .render()
}

/// The `X-Gsim-Path` value of a response body, derived from its leading
/// schema tag — so cached and coalesced responses label their path
/// without carrying side-channel state.
fn path_of_body(body: &str) -> &'static str {
    if body.starts_with("{\"schema\":\"gsim-serve-predict-fast-v1\"") {
        "fast"
    } else if body.starts_with("{\"schema\":\"gsim-serve-predict-degraded-v1\"") {
        "degraded"
    } else {
        "full"
    }
}

/// The exhaustive config encodings of a plan's whole doubling ladder,
/// joined — the config part of every stage-cache key.
fn ladder_encoding(plan: &Plan) -> String {
    plan.ladder
        .iter()
        .map(|&s| encode_config(&GpuConfig::paper_target(s, plan.scale)))
        .collect::<Vec<_>>()
        .join("|")
}

/// The doubling ladder the sampled collect stage covers: all of it,
/// from the smaller scale model to [`MAX_TARGET_SMS`], regardless of
/// the request's targets. The replay pass dominates the collection
/// cost and the per-capacity readout is a histogram query, so one
/// collection (and the fit built on it) serves every target set for
/// the same content — a repeat request with different targets must
/// never re-collect.
fn collect_ladder(plan: &Plan) -> Vec<u32> {
    let mut ladder = vec![plan.small];
    let mut size = plan.small;
    while size < MAX_TARGET_SMS {
        size = size.saturating_mul(2);
        ladder.push(size);
    }
    ladder
}

/// The config encodings of [`collect_ladder`] — the config part of the
/// collect- and fit-stage cache keys, target-independent by design.
fn collect_ladder_encoding(plan: &Plan) -> String {
    collect_ladder(plan)
        .iter()
        .map(|&s| encode_config(&GpuConfig::paper_target(s, plan.scale)))
        .collect::<Vec<_>>()
        .join("|")
}

/// The `GET /v1/workloads` catalog.
fn workloads_json() -> Json {
    let scale = MemScale::default();
    obj([
        ("schema", Json::from("gsim-serve-workloads-v1")),
        (
            "strong",
            Json::Arr(
                strong_suite(scale)
                    .iter()
                    .map(|b| {
                        obj([
                            ("abbr", Json::from(b.abbr)),
                            ("name", Json::from(b.full_name)),
                            ("footprint_mb", Json::from(b.workload.footprint_mb_paper())),
                            ("expected", Json::from(b.expected.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "weak",
            Json::Arr(
                weak_suite(scale)
                    .iter()
                    .map(|b| {
                        obj([
                            ("abbr", Json::from(b.abbr)),
                            ("expected", Json::from(b.expected.to_string())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The fields of one stored trace's catalog entry (shared by the upload
/// response and `GET /v1/traces`).
fn trace_meta_fields(m: &TraceMeta) -> Vec<(&'static str, Json)> {
    vec![
        ("ref", Json::from(m.trace_ref.as_str())),
        ("name", Json::from(m.name.as_str())),
        ("kernels", Json::from(m.n_kernels)),
        ("warps", Json::from(m.total_warps)),
        ("ops", Json::from(m.total_ops)),
        ("warp_instrs", Json::from(m.total_warp_instrs)),
        ("bytes", Json::from(m.bytes)),
    ]
}

/// The `trace_store` group of the `/metrics` document.
fn store_stats_json(s: &StoreStats) -> Json {
    obj([
        ("ingests", Json::from(s.ingests)),
        ("dedup_hits", Json::from(s.dedup_hits)),
        ("validation_failures", Json::from(s.validation_failures)),
        ("evictions", Json::from(s.evictions)),
        ("recovered", Json::from(s.recovered)),
        ("store_bytes", Json::from(s.store_bytes)),
        ("entries", Json::from(s.entries)),
    ])
}

// --- request parsing and normalization ---------------------------------

/// A strict field reader over one JSON object: every access is recorded
/// so unknown (misspelled) fields can be rejected — a typo must fail
/// loudly, not silently select a default and poison the cache key space.
struct Fields<'a> {
    obj: &'a [(String, Json)],
    known: Vec<&'static str>,
    context: &'static str,
}

impl<'a> Fields<'a> {
    fn new(json: &'a Json, context: &'static str) -> Result<Self, ApiError> {
        let Json::Obj(obj) = json else {
            return Err(ApiError::bad(format!("{context} must be a JSON object")));
        };
        Ok(Self {
            obj,
            known: Vec::new(),
            context,
        })
    }

    fn get(&mut self, name: &'static str) -> Option<&'a Json> {
        self.known.push(name);
        self.obj.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    fn finish(self) -> Result<(), ApiError> {
        for (k, _) in self.obj {
            if !self.known.contains(&k.as_str()) {
                return Err(ApiError::bad(format!(
                    "unknown field {k:?} in {}; known fields: {}",
                    self.context,
                    self.known.join(", ")
                )));
            }
        }
        Ok(())
    }
}

fn as_u32(json: &Json, what: &str) -> Result<u32, ApiError> {
    json.as_u64()
        .and_then(|v| u32::try_from(v).ok())
        .ok_or_else(|| ApiError::bad(format!("{what} must be a non-negative integer")))
}

fn as_f64(json: &Json, what: &str) -> Result<f64, ApiError> {
    json.as_f64()
        .filter(|v| v.is_finite())
        .ok_or_else(|| ApiError::bad(format!("{what} must be a finite number")))
}

fn parse_request(body: &[u8], store: Option<&TraceStore>) -> Result<Plan, ApiError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ApiError::bad("request body must be UTF-8 JSON"))?;
    let doc = gsim_json::parse_with_limits(text, gsim_json::DEFAULT_MAX_DEPTH, MAX_PREDICT_BYTES)
        .map_err(|e| ApiError::bad(format!("request body is not valid JSON: {e}")))?;
    let mut fields = Fields::new(&doc, "request")?;

    // Memory miniature.
    let scale_divisor = match fields.get("mem_scale") {
        Some(v) => {
            let d = as_u32(v, "mem_scale")?;
            if !(1..=4096).contains(&d) {
                return Err(ApiError::bad("mem_scale must be in 1..=4096"));
            }
            d
        }
        None => MemScale::default().divisor(),
    };
    let scale = MemScale::new(scale_divisor);

    // Scale-model sizes.
    let (small, large) = match fields.get("scale_models") {
        Some(Json::Arr(arr)) if arr.len() == 2 => (
            as_u32(&arr[0], "scale_models[0]")?,
            as_u32(&arr[1], "scale_models[1]")?,
        ),
        Some(_) => {
            return Err(ApiError::bad(
                "scale_models must be a two-element array, e.g. [8, 16]",
            ))
        }
        None => (8, 16),
    };
    if small == 0 || small >= large {
        return Err(ApiError::bad("scale_models must satisfy 0 < small < large"));
    }

    // Targets: one `target_sms` or an array `targets`; sorted + deduped
    // so equivalent requests share one cache entry.
    let mut targets: Vec<u32> = match (fields.get("target_sms"), fields.get("targets")) {
        (Some(v), None) => vec![as_u32(v, "target_sms")?],
        (None, Some(Json::Arr(arr))) if !arr.is_empty() => arr
            .iter()
            .map(|v| as_u32(v, "targets[]"))
            .collect::<Result<_, _>>()?,
        (None, Some(_)) => {
            return Err(ApiError::bad("targets must be a non-empty array"));
        }
        (Some(_), Some(_)) => {
            return Err(ApiError::bad("give either target_sms or targets, not both"));
        }
        (None, None) => {
            return Err(ApiError::bad("missing target_sms (or targets) field"));
        }
    };
    targets.sort_unstable();
    targets.dedup();

    // Prediction path: gate automatically (default), or force one side.
    let path = match fields.get("path") {
        None => PathMode::Auto,
        Some(v) => match v.as_str() {
            Some("auto") => PathMode::Auto,
            Some("fast") => PathMode::Fast,
            Some("full") => PathMode::Full,
            _ => {
                return Err(ApiError::bad(
                    "path must be \"auto\", \"fast\", or \"full\"",
                ));
            }
        },
    };
    // Multi-GPU system model (DESIGN.md §16): off by default; `n_gpus`
    // and `placement` are only meaningful — and only enter the
    // normalized request — under `"system": "multigpu"`.
    let multigpu = match fields.get("system") {
        None => false,
        Some(v) => match v.as_str() {
            Some("single") => false,
            Some("multigpu") => true,
            _ => {
                return Err(ApiError::bad("system must be \"single\" or \"multigpu\""));
            }
        },
    };
    let n_gpus_field = fields.get("n_gpus").cloned();
    let placement_field = fields.get("placement").cloned();
    let system = if multigpu {
        let n_gpus = match &n_gpus_field {
            Some(v) => as_u32(v, "n_gpus")?,
            None => 2,
        };
        if !(2..=64).contains(&n_gpus) {
            return Err(ApiError::bad("n_gpus must be in 2..=64"));
        }
        let placement = match &placement_field {
            None => Placement::Interleave,
            Some(v) => v.as_str().and_then(Placement::parse).ok_or_else(|| {
                ApiError::bad("placement must be \"first-touch\", \"interleave\", or \"replicate\"")
            })?,
        };
        Some(SystemPlan { n_gpus, placement })
    } else {
        if n_gpus_field.is_some() || placement_field.is_some() {
            return Err(ApiError::bad(
                "n_gpus and placement require \"system\": \"multigpu\"",
            ));
        }
        None
    };

    for &t in &targets {
        if t <= large || t > MAX_TARGET_SMS {
            return Err(ApiError::bad(format!(
                "target {t} must exceed the larger scale model ({large}) \
                 and be at most {MAX_TARGET_SMS}"
            )));
        }
    }

    // The doubling ladder smalls→max target; every named size must sit
    // on it (the predictor extrapolates per doubling).
    let max_target = *targets.last().expect("targets verified non-empty");
    let mut ladder = vec![small];
    let mut size = small;
    while size < max_target {
        size = size.saturating_mul(2);
        ladder.push(size);
    }
    for (what, value) in
        std::iter::once(("larger scale model", large)).chain(targets.iter().map(|&t| ("target", t)))
    {
        if !ladder.contains(&value) {
            return Err(ApiError::bad(format!(
                "{what} {value} is not a power-of-two multiple of the \
                 smaller scale model ({small})"
            )));
        }
    }

    // Workload: a suite benchmark, a synthetic pattern, or a stored trace.
    let workload_field = fields.get("workload").cloned();
    let suite_field = fields.get("suite").cloned();
    let pattern_field = fields.get("pattern").cloned();
    let trace_field = fields.get("trace_ref").cloned();
    let mut semantic: Option<u64> = None;
    let (kind, workload_json, suite_name) = match (workload_field, pattern_field, trace_field) {
        (Some(wl), None, None) => {
            let abbr = wl
                .as_str()
                .ok_or_else(|| ApiError::bad("workload must be a benchmark abbreviation"))?;
            let suite = match &suite_field {
                None => "strong",
                Some(s) => match s.as_str() {
                    Some(s @ ("strong" | "weak")) => s,
                    _ => {
                        return Err(ApiError::bad("suite must be \"strong\" or \"weak\""));
                    }
                },
            };
            let kind = if suite == "weak" {
                let bench = weak_benchmark(abbr, scale).ok_or_else(|| {
                    ApiError::bad(format!(
                        "unknown weak benchmark {abbr:?}; see GET /v1/workloads"
                    ))
                })?;
                PlanKind::PerSize {
                    small_wl: bench.workload_for_sms(small),
                    large_wl: bench.workload_for_sms(large),
                }
            } else {
                let bench = strong_benchmark(abbr, scale).ok_or_else(|| {
                    ApiError::bad(format!("unknown benchmark {abbr:?}; see GET /v1/workloads"))
                })?;
                PlanKind::WithMrc(PlanWorkload::Synthetic(bench.workload))
            };
            (kind, Json::from(abbr), suite.to_string())
        }
        (None, Some(pattern), None) => {
            if suite_field.is_some() {
                return Err(ApiError::bad("suite does not apply to pattern requests"));
            }
            let (workload, normalized) = parse_pattern(&pattern, scale)?;
            (
                PlanKind::WithMrc(PlanWorkload::Synthetic(workload)),
                normalized,
                "pattern".to_string(),
            )
        }
        (None, None, Some(t)) => {
            if suite_field.is_some() {
                return Err(ApiError::bad("suite does not apply to trace requests"));
            }
            let trace_ref = t
                .as_str()
                .ok_or_else(|| ApiError::bad("trace_ref must be a string"))?
                .to_ascii_lowercase();
            let hash = (trace_ref.len() == 16)
                .then(|| u64::from_str_radix(&trace_ref, 16).ok())
                .flatten()
                .ok_or_else(|| {
                    ApiError::bad("trace_ref must be 16 hex digits (see POST /v1/traces)")
                })?;
            let Some(store) = store else {
                return Err(ApiError::internal("no trace store configured"));
            };
            let wl = match store.load(&trace_ref) {
                Ok(wl) => wl,
                Err(StoreError::NotFound(_)) => {
                    return Err(ApiError {
                        status: 404,
                        message: format!(
                            "no trace {trace_ref} in store; upload it via POST /v1/traces"
                        ),
                    });
                }
                Err(e) => {
                    return Err(ApiError::internal(format!("trace load failed: {e}")));
                }
            };
            semantic = Some(hash);
            let json = Json::from(trace_ref.as_str());
            (
                PlanKind::WithMrc(PlanWorkload::Traced(Arc::new(wl))),
                json,
                "trace".to_string(),
            )
        }
        (None, None, None) => {
            return Err(ApiError::bad(
                "missing workload (or pattern, or trace_ref) field",
            ));
        }
        _ => {
            return Err(ApiError::bad(
                "give exactly one of workload, pattern, or trace_ref — not both",
            ));
        }
    };
    fields.finish()?;

    // The fast path fits predictors to a miss-rate curve; a per-size
    // (weak-scaling) plan has none, so forcing it is a contradiction.
    if path == PathMode::Fast && matches!(kind, PlanKind::PerSize { .. }) {
        return Err(ApiError::bad(
            "path \"fast\" needs a miss-rate curve; weak-scaling plans \
             must use \"auto\" or \"full\"",
        ));
    }

    // The normalized request: fixed field order, every default filled
    // in, so semantically identical requests render identically.
    let workload_key = match suite_name.as_str() {
        "pattern" => "pattern",
        "trace" => "trace_ref",
        _ => "workload",
    };
    let mut normalized_fields: Vec<(&str, Json)> = vec![
        (workload_key, workload_json),
        ("suite", Json::from(suite_name.as_str())),
        (
            "scale_models",
            Json::Arr(vec![Json::from(small), Json::from(large)]),
        ),
        (
            "targets",
            Json::Arr(targets.iter().map(|&t| Json::from(t)).collect()),
        ),
        ("mem_scale", Json::from(scale.divisor())),
    ];
    if let Some(sys) = system {
        // Cache-key participating: a multi-GPU forecast must never alias
        // a single-GPU one (or one for another system shape).
        normalized_fields.push(("system", Json::from("multigpu")));
        normalized_fields.push(("n_gpus", Json::from(sys.n_gpus)));
        normalized_fields.push(("placement", Json::from(sys.placement.as_str())));
    }
    let normalized = obj(normalized_fields);

    // Content address: the normalized request plus every field of every
    // derived config on the ladder — a change to the simulator's
    // defaults must invalidate old cache entries.
    let mut canonical = normalized.render();
    for &s in &ladder {
        canonical.push('|');
        canonical.push_str(&encode_config(&GpuConfig::paper_target(s, scale)));
    }
    // The requested path changes what is computed (fast vs full bodies),
    // so it is part of the address — for every mode, including the
    // default, so the mode set can grow without aliasing old entries.
    canonical.push_str("|path=");
    canonical.push_str(path.as_str());

    Ok(Plan {
        canonical,
        normalized,
        kind,
        small,
        large,
        targets,
        scale,
        ladder,
        semantic,
        path,
        system,
    })
}

/// Parses a synthetic-pattern spec into a one-kernel workload, returning
/// it with its fully-defaulted normalized JSON. The defaults are pinned
/// *here* (not inherited from `PatternSpec`'s builder) so the service's
/// request semantics cannot drift under it.
fn parse_pattern(pattern: &Json, scale: MemScale) -> Result<(Workload, Json), ApiError> {
    let mut f = Fields::new(pattern, "pattern")?;
    let kind_name = f
        .get("kind")
        .and_then(Json::as_str)
        .ok_or_else(|| ApiError::bad("pattern.kind must be a string"))?
        .to_string();
    let footprint_mb = match f.get("footprint_mb") {
        Some(v) => as_f64(v, "pattern.footprint_mb")?,
        None => return Err(ApiError::bad("pattern.footprint_mb is required")),
    };
    if footprint_mb <= 0.0 || footprint_mb > 1024.0 * 1024.0 {
        return Err(ApiError::bad("pattern.footprint_mb must be in (0, 2^20]"));
    }

    let mut extra: Vec<(&'static str, Json)> = Vec::new();
    let kind = match kind_name.as_str() {
        "global_sweep" => {
            let passes = match f.get("passes") {
                Some(v) => as_u32(v, "pattern.passes")?.max(1),
                None => 1,
            };
            extra.push(("passes", Json::from(passes)));
            PatternKind::GlobalSweep { passes }
        }
        "streaming" => PatternKind::Streaming,
        "pointer_chase" => PatternKind::PointerChase,
        "tiled" => {
            let tile_lines = match f.get("tile_lines") {
                Some(v) => u64::from(as_u32(v, "pattern.tile_lines")?.max(1)),
                None => return Err(ApiError::bad("tiled pattern requires tile_lines")),
            };
            let reuses = match f.get("reuses") {
                Some(v) => as_u32(v, "pattern.reuses")?.max(1),
                None => return Err(ApiError::bad("tiled pattern requires reuses")),
            };
            extra.push(("tile_lines", Json::from(tile_lines)));
            extra.push(("reuses", Json::from(reuses)));
            PatternKind::Tiled { tile_lines, reuses }
        }
        "working_set_mix" => {
            let Some(Json::Arr(levels)) = f.get("levels") else {
                return Err(ApiError::bad(
                    "working_set_mix requires levels: [[weight, fraction], ...]",
                ));
            };
            let mut parsed = Vec::new();
            for level in levels {
                let Json::Arr(pair) = level else {
                    return Err(ApiError::bad("each level must be [weight, fraction]"));
                };
                let [w, frac] = pair.as_slice() else {
                    return Err(ApiError::bad("each level must be [weight, fraction]"));
                };
                let (w, frac) = (as_f64(w, "level weight")?, as_f64(frac, "level fraction")?);
                if w <= 0.0 || frac <= 0.0 {
                    return Err(ApiError::bad(
                        "level weights and fractions must be positive",
                    ));
                }
                parsed.push((w, frac));
            }
            if parsed.is_empty() {
                return Err(ApiError::bad("levels must be non-empty"));
            }
            extra.push((
                "levels",
                Json::Arr(
                    parsed
                        .iter()
                        .map(|&(w, frac)| Json::Arr(vec![Json::from(w), Json::from(frac)]))
                        .collect(),
                ),
            ));
            PatternKind::WorkingSetMix { levels: parsed }
        }
        other => {
            return Err(ApiError::bad(format!(
                "unknown pattern kind {other:?}; one of global_sweep, streaming, \
                 working_set_mix, tiled, pointer_chase"
            )));
        }
    };

    let num = |f: &mut Fields<'_>, name: &'static str, default: u32| -> Result<u32, ApiError> {
        match f.get(name) {
            Some(v) => as_u32(v, name),
            None => Ok(default),
        }
    };
    let mem_ops_per_warp = num(&mut f, "mem_ops_per_warp", 64)?.max(1);
    let compute_per_mem = match f.get("compute_per_mem") {
        Some(v) => as_f64(v, "pattern.compute_per_mem")?.max(0.0),
        None => 2.0,
    };
    let write_frac = match f.get("write_frac") {
        Some(v) => as_f64(v, "pattern.write_frac")?.clamp(0.0, 1.0),
        None => 0.0,
    };
    let divergence = num(&mut f, "divergence", 1)?.clamp(1, 32) as u8;
    let tail_compute = num(&mut f, "tail_compute", 0)?;
    let ctas = num(&mut f, "ctas", 1024)?.max(1);
    let threads_per_cta = num(&mut f, "threads_per_cta", 256)?;
    if !(1..=1024).contains(&threads_per_cta) {
        return Err(ApiError::bad("threads_per_cta must be in 1..=1024"));
    }
    let seed = u64::from(num(&mut f, "seed", 42)?);
    let shared_hot = match f.get("shared_hot") {
        Some(spec) => {
            let mut hf = Fields::new(spec, "shared_hot")?;
            let prob = match hf.get("prob") {
                Some(v) => as_f64(v, "shared_hot.prob")?.clamp(0.0, 1.0),
                None => return Err(ApiError::bad("shared_hot requires prob")),
            };
            let hot_lines = match hf.get("hot_lines") {
                Some(v) => u64::from(as_u32(v, "shared_hot.hot_lines")?.max(1)),
                None => return Err(ApiError::bad("shared_hot requires hot_lines")),
            };
            hf.finish()?;
            Some((prob, hot_lines))
        }
        None => None,
    };
    f.finish()?;

    let mut spec = PatternSpec::new(kind, scale.mb_to_model_lines(footprint_mb))
        .mem_ops_per_warp(mem_ops_per_warp)
        .compute_per_mem(compute_per_mem)
        .write_frac(write_frac)
        .divergence(divergence)
        .tail_compute(tail_compute);
    if let Some((prob, hot_lines)) = shared_hot {
        spec = spec.shared_hot(prob, hot_lines);
    }
    let workload = Workload::new(
        "pattern",
        seed,
        vec![Kernel::new("pattern", ctas, threads_per_cta, spec)],
    )
    .with_footprint_mb(footprint_mb);

    let mut normalized: Vec<(&'static str, Json)> = vec![
        ("kind", Json::from(kind_name.as_str())),
        ("footprint_mb", Json::from(footprint_mb)),
    ];
    normalized.extend(extra);
    normalized.extend([
        ("mem_ops_per_warp", Json::from(mem_ops_per_warp)),
        ("compute_per_mem", Json::from(compute_per_mem)),
        ("write_frac", Json::from(write_frac)),
        ("divergence", Json::from(u32::from(divergence))),
        ("tail_compute", Json::from(tail_compute)),
        ("ctas", Json::from(ctas)),
        ("threads_per_cta", Json::from(threads_per_cta)),
        ("seed", Json::from(seed)),
    ]);
    if let Some((prob, hot_lines)) = shared_hot {
        normalized.push((
            "shared_hot",
            obj([
                ("prob", Json::from(prob)),
                ("hot_lines", Json::from(hot_lines)),
            ]),
        ));
    }
    Ok((workload, obj(normalized)))
}

/// Spells out every field of a derived [`GpuConfig`] — an explicit
/// encoder, not `Debug`, so the canonical form is a deliberate contract:
/// adding a config field without extending this is a compile error.
fn encode_config(c: &GpuConfig) -> String {
    // Exhaustive destructuring: a new field breaks this build until the
    // encoding (and thereby cache invalidation) accounts for it.
    let GpuConfig {
        n_sms,
        sm_clock_ghz,
        warps_per_sm,
        max_threads_per_sm,
        l1_bytes,
        l1_ways,
        l1_mshrs,
        l1_latency,
        line_bytes,
        llc_bytes_total,
        llc_slices,
        llc_ways,
        llc_latency,
        noc_gbs,
        noc_hop_latency,
        dram_gbs_per_mc,
        n_mcs,
        dram_latency,
        llc_policy,
        dram_banks_per_mc,
        sim_threads: _, // host execution knob: results are identical
        mem_shards,
        sync_slack,
        mem_scale,
    } = c;
    format!(
        "n_sms={n_sms};clock={sm_clock_ghz};warps={warps_per_sm};threads={max_threads_per_sm};\
         l1={l1_bytes}/{l1_ways}w/{l1_mshrs}m/{l1_latency}c;line={line_bytes};\
         llc={llc_bytes_total}/{llc_slices}s/{llc_ways}w/{llc_latency}c;\
         noc={noc_gbs}/{noc_hop_latency}c;dram={dram_gbs_per_mc}x{n_mcs}/{dram_latency}c;\
         policy={llc_policy:?};banks={dram_banks_per_mc};shards={mem_shards};\
         slack={sync_slack};scale={}",
        mem_scale.divisor()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gsim_trace::semantic_hash_of;

    fn plan(body: &str) -> Result<Plan, ApiError> {
        parse_request(body.as_bytes(), None)
    }

    #[test]
    fn normalization_fills_defaults_and_sorts_targets() {
        let p = plan(r#"{"workload": "bfs", "targets": [128, 64, 128]}"#).unwrap();
        assert_eq!(p.small, 8);
        assert_eq!(p.large, 16);
        assert_eq!(p.targets, vec![64, 128]);
        assert_eq!(p.ladder, vec![8, 16, 32, 64, 128]);
        let rendered = p.normalized.render();
        assert!(rendered.contains("\"suite\":\"strong\""), "{rendered}");
        assert!(rendered.contains("\"mem_scale\":8"), "{rendered}");
    }

    #[test]
    fn equivalent_requests_share_one_canonical_form() {
        // Explicit defaults, reordered fields, duplicate targets — all
        // the same content address.
        let a = plan(r#"{"workload": "bfs", "target_sms": 128}"#).unwrap();
        let b = plan(
            r#"{"mem_scale": 8, "targets": [128], "scale_models": [8, 16],
                "suite": "strong", "workload": "bfs"}"#,
        )
        .unwrap();
        assert_eq!(a.canonical, b.canonical);
        // A different miniature is a different address.
        let c = plan(r#"{"workload": "bfs", "target_sms": 128, "mem_scale": 16}"#).unwrap();
        assert_ne!(a.canonical, c.canonical);
    }

    #[test]
    fn multigpu_fields_normalize_and_key_the_cache() {
        let single = plan(r#"{"workload": "bfs", "target_sms": 128}"#).unwrap();
        // An explicit "single" is the default spelled out: same address.
        let explicit =
            plan(r#"{"workload": "bfs", "target_sms": 128, "system": "single"}"#).unwrap();
        assert_eq!(single.canonical, explicit.canonical);
        assert!(single.system.is_none());
        assert!(!single.normalized.render().contains("n_gpus"));

        // A multi-GPU request fills defaults, echoes them, and gets its
        // own content address.
        let multi =
            plan(r#"{"workload": "bfs", "target_sms": 128, "system": "multigpu"}"#).unwrap();
        let sys = multi.system.expect("multigpu plan");
        assert_eq!(sys.n_gpus, 2);
        assert_eq!(sys.placement, Placement::Interleave);
        let rendered = multi.normalized.render();
        assert!(rendered.contains("\"system\":\"multigpu\""), "{rendered}");
        assert!(rendered.contains("\"n_gpus\":2"), "{rendered}");
        assert!(
            rendered.contains("\"placement\":\"interleave\""),
            "{rendered}"
        );
        assert_ne!(single.canonical, multi.canonical);

        // Every system shape is its own address.
        let four = plan(
            r#"{"workload": "bfs", "target_sms": 128, "system": "multigpu",
                "n_gpus": 4, "placement": "replicate"}"#,
        )
        .unwrap();
        assert_ne!(multi.canonical, four.canonical);
        assert_eq!(four.system.unwrap().n_gpus, 4);
        assert_eq!(four.system.unwrap().placement, Placement::ReadReplicate);
    }

    #[test]
    fn multigpu_fields_are_validated() {
        for (body, needle) in [
            (
                r#"{"workload": "bfs", "target_sms": 128, "system": "cluster"}"#,
                "system must be",
            ),
            (
                r#"{"workload": "bfs", "target_sms": 128, "n_gpus": 4}"#,
                "require",
            ),
            (
                r#"{"workload": "bfs", "target_sms": 128, "placement": "interleave"}"#,
                "require",
            ),
            (
                r#"{"workload": "bfs", "target_sms": 128, "system": "multigpu", "n_gpus": 1}"#,
                "n_gpus must be",
            ),
            (
                r#"{"workload": "bfs", "target_sms": 128, "system": "multigpu", "n_gpus": 65}"#,
                "n_gpus must be",
            ),
            (
                r#"{"workload": "bfs", "target_sms": 128, "system": "multigpu",
                    "placement": "numa"}"#,
                "placement must be",
            ),
        ] {
            let err = plan(body).unwrap_err();
            assert_eq!(err.status, 400, "{body}");
            assert!(err.message.contains(needle), "{body}: {}", err.message);
        }
    }

    #[test]
    fn multigpu_plans_scale_the_forecast() {
        let single = plan(r#"{"workload": "bfs", "target_sms": 128}"#).unwrap();
        let multi =
            plan(r#"{"workload": "bfs", "target_sms": 128, "system": "multigpu", "n_gpus": 4}"#)
                .unwrap();
        let forecast = gsim_core::Forecast {
            correction_factor: 1.0,
            cliff_at: None,
            targets: vec![gsim_core::TargetForecast {
                target: 128,
                by_method: vec![gsim_core::oneshot::MethodPrediction {
                    method: "scale-model",
                    predicted_ipc: 100.0,
                }],
            }],
        };
        let ipc_of = |rows: &[Json]| -> f64 {
            let Json::Obj(row) = &rows[0] else {
                panic!("prediction row is an object")
            };
            row.iter()
                .find(|(k, _)| k == "ipc_by_method")
                .and_then(|(_, v)| match v {
                    Json::Obj(methods) => methods[0].1.as_f64(),
                    _ => None,
                })
                .expect("scale-model ipc")
        };
        let base = ipc_of(&predictions_json(&single, &forecast, 0.5));
        assert_eq!(base, 100.0, "single-GPU forecasts pass through");
        let scaled = ipc_of(&predictions_json(&multi, &forecast, 0.5));
        assert!(
            scaled > base && scaled < 4.0 * base,
            "4-GPU scaling must be sublinear but positive: {scaled}"
        );
        // Compute-bound workloads scale almost linearly.
        let compute = ipc_of(&predictions_json(&multi, &forecast, 0.0));
        assert_eq!(compute, 400.0);
    }

    #[test]
    fn rejects_unknown_fields_and_bad_shapes() {
        assert!(plan(r#"{"workload": "bfs", "target_sms": 128, "tyop": 1}"#)
            .unwrap_err()
            .message
            .contains("unknown field"));
        assert!(plan(r#"{"workload": "nope", "target_sms": 128}"#)
            .unwrap_err()
            .message
            .contains("unknown benchmark"));
        assert!(plan(r#"{"workload": "bfs"}"#)
            .unwrap_err()
            .message
            .contains("target"));
        assert!(plan(r#"{"workload": "bfs", "target_sms": 100}"#)
            .unwrap_err()
            .message
            .contains("power-of-two"));
        assert!(plan(r#"not json"#).unwrap_err().message.contains("JSON"));
        assert!(
            plan(r#"{"workload": "bfs", "pattern": {}, "target_sms": 128}"#)
                .unwrap_err()
                .message
                .contains("not both")
        );
    }

    #[test]
    fn pattern_requests_normalize_and_build_workloads() {
        let p = plan(
            r#"{"pattern": {"kind": "global_sweep", "footprint_mb": 4.0, "passes": 3},
                "target_sms": 64, "scale_models": [8, 16]}"#,
        )
        .unwrap();
        let PlanKind::WithMrc(PlanWorkload::Synthetic(wl)) = &p.kind else {
            panic!("patterns are strong-scaling plans");
        };
        assert_eq!(wl.kernels().len(), 1);
        let rendered = p.normalized.render();
        assert!(rendered.contains("\"passes\":3"), "{rendered}");
        assert!(rendered.contains("\"mem_ops_per_warp\":64"), "{rendered}");
        // Unknown pattern kinds fail loudly.
        assert!(
            plan(r#"{"pattern": {"kind": "zigzag", "footprint_mb": 1.0}, "target_sms": 64}"#)
                .unwrap_err()
                .message
                .contains("unknown pattern kind")
        );
    }

    #[test]
    fn weak_requests_build_per_size_workloads_without_mrc() {
        let p = plan(r#"{"workload": "vaw", "suite": "weak", "target_sms": 128}"#);
        // Use whatever the weak suite actually calls its first benchmark.
        let abbr = weak_suite(MemScale::default())[0].abbr;
        let p = match p {
            Ok(p) => p,
            Err(_) => plan(&format!(
                r#"{{"workload": "{abbr}", "suite": "weak", "target_sms": 128}}"#
            ))
            .unwrap(),
        };
        assert!(matches!(p.kind, PlanKind::PerSize { .. }));
    }

    #[test]
    fn trace_requests_validate_the_reference_and_resolve_via_the_store() {
        // Shape errors surface without touching any store.
        assert!(plan(r#"{"trace_ref": "xyz", "target_sms": 128}"#)
            .unwrap_err()
            .message
            .contains("16 hex digits"));
        assert!(
            plan(r#"{"trace_ref": "0011223344556677", "suite": "weak", "target_sms": 128}"#)
                .unwrap_err()
                .message
                .contains("does not apply")
        );
        assert!(
            plan(r#"{"trace_ref": "0011223344556677", "workload": "bfs", "target_sms": 128}"#)
                .unwrap_err()
                .message
                .contains("not both")
        );

        // A real store resolves the reference; the normalized form and the
        // plan's semantic hash are the content address itself.
        let dir = std::env::temp_dir().join(format!(
            "gsim-serve-parse-trace-{}-{}",
            std::process::id(),
            line!()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = TraceStore::open(&dir, StoreConfig::default()).expect("open store");
        let spec = PatternSpec::new(PatternKind::Streaming, 512);
        let wl = Workload::new("t", 9, vec![Kernel::new("k", 8, 128, spec)]);
        let mut bytes = Vec::new();
        gsim_trace::write_trace(&wl, &mut bytes).expect("write trace");
        let (meta, _) = store.ingest_bytes(&bytes).expect("ingest");

        let body = format!(
            r#"{{"trace_ref": "{}", "target_sms": 128}}"#,
            meta.trace_ref
        );
        let p = parse_request(body.as_bytes(), Some(&store)).expect("trace plan");
        assert!(matches!(p.kind, PlanKind::WithMrc(PlanWorkload::Traced(_))));
        assert_eq!(p.semantic, Some(semantic_hash_of(&wl)));
        let rendered = p.normalized.render();
        assert!(rendered.contains(&format!("\"trace_ref\":\"{}\"", meta.trace_ref)));
        assert!(rendered.contains("\"suite\":\"trace\""), "{rendered}");

        // An unknown (but well-formed) reference is a 404.
        let miss = parse_request(
            br#"{"trace_ref": "00000000000000aa", "target_sms": 128}"#,
            Some(&store),
        )
        .unwrap_err();
        assert_eq!(miss.status, 404);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn path_field_addresses_but_does_not_echo() {
        let auto = plan(r#"{"workload": "bfs", "target_sms": 128}"#).unwrap();
        assert_eq!(auto.path, PathMode::Auto);
        assert!(auto.canonical.ends_with("|path=auto"), "{}", auto.canonical);
        let full = plan(r#"{"workload": "bfs", "target_sms": 128, "path": "full"}"#).unwrap();
        assert_eq!(full.path, PathMode::Full);
        // Different address (what is computed differs)…
        assert_ne!(auto.canonical, full.canonical);
        // …but identical echo: an escalated auto body must be
        // byte-identical to a forced-full one.
        assert_eq!(auto.normalized.render(), full.normalized.render());
        assert!(!auto.normalized.render().contains("path"));

        assert!(
            plan(r#"{"workload": "bfs", "target_sms": 128, "path": "warp"}"#)
                .unwrap_err()
                .message
                .contains("path must be"),
        );
        let weak = weak_suite(MemScale::default())[0].abbr;
        let err = plan(&format!(
            r#"{{"workload": "{weak}", "suite": "weak", "target_sms": 128, "path": "fast"}}"#
        ))
        .unwrap_err();
        assert!(err.message.contains("miss-rate curve"), "{}", err.message);
    }

    #[test]
    fn body_paths_derive_from_schema_tags() {
        assert_eq!(
            path_of_body("{\"schema\":\"gsim-serve-predict-v1\",…"),
            "full"
        );
        assert_eq!(
            path_of_body("{\"schema\":\"gsim-serve-predict-fast-v1\",…"),
            "fast"
        );
        assert_eq!(
            path_of_body("{\"schema\":\"gsim-serve-predict-degraded-v1\",…"),
            "degraded"
        );
    }

    #[test]
    fn config_encoding_is_exhaustive_and_scale_sensitive() {
        let a = encode_config(&GpuConfig::paper_target(8, MemScale::default()));
        let b = encode_config(&GpuConfig::paper_target(8, MemScale::new(16)));
        assert_ne!(a, b);
        assert!(a.contains("n_sms=8"));
        // sim_threads must NOT affect the address (results are identical).
        let mut cfg = GpuConfig::paper_target(8, MemScale::default());
        cfg.sim_threads = 7;
        assert_eq!(a, encode_config(&cfg));
    }
}
