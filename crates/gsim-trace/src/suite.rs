//! The strong-scaling benchmark suite (paper Table II).
//!
//! Each of the 21 benchmarks is recreated as a synthetic [`Workload`] whose
//! published characteristics (footprint, CTA grids, instruction volume) are
//! taken from Table II and whose access-pattern family is chosen to match
//! the behaviour the paper describes. Footprints are converted to model
//! units by the [`MemScale`] memory miniature; grid sizes are kept at
//! paper-comparable magnitudes (several waves of CTAs on the largest
//! target), and dynamic instruction counts are reduced roughly 1000× so a
//! full sweep runs in minutes (DESIGN.md §5).
//!
//! The `expected` classification is the paper's rightmost Table II column;
//! integration tests verify the timing simulator reproduces it.

use crate::kernel::{Kernel, Workload};
use crate::pattern::{PatternKind, PatternSpec};
use crate::scale::MemScale;

/// How a workload's performance scales with system size (paper Section IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalingClass {
    /// Performance grows proportionally with system size.
    Linear,
    /// Performance grows slower than system size (imbalance or camping).
    SubLinear,
    /// Performance grows faster than system size (miss-rate-curve cliff).
    SuperLinear,
}

impl std::fmt::Display for ScalingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScalingClass::Linear => write!(f, "linear"),
            ScalingClass::SubLinear => write!(f, "sub-linear"),
            ScalingClass::SuperLinear => write!(f, "super-linear"),
        }
    }
}

/// A Table II benchmark: the synthetic workload plus its paper metadata.
#[derive(Debug, Clone)]
pub struct StrongBenchmark {
    /// Abbreviation used throughout the paper's figures (dct, bfs, pf, …).
    pub abbr: &'static str,
    /// Full benchmark name from Table II.
    pub full_name: &'static str,
    /// Originating suite.
    pub origin: &'static str,
    /// The paper's published CTA grid sizes, for Table II reporting.
    pub cta_sizes_paper: &'static str,
    /// The paper's scaling classification (Table II, rightmost column).
    pub expected: ScalingClass,
    /// The synthetic workload.
    pub workload: Workload,
}

/// Default threads per CTA (8 warps; 6 resident CTAs fill an SM's 48 warps).
pub const CTA_THREADS: u32 = 256;

fn mb(scale: MemScale, paper_mb: f64) -> u64 {
    scale.mb_to_model_lines(paper_mb)
}

/// One grid-wide pass over the footprint. Iterative benchmarks re-sweep
/// their data by *relaunching* the kernel (see [`repeat`]): reuse then
/// happens across kernel launches with an LLC-level reuse distance equal to
/// the full footprint, exactly like real iterative GPU applications —
/// per-warp looping would instead cap the reuse distance at the resident
/// wave's working set.
fn sweep(scale: MemScale, fp_mb: f64) -> PatternSpec {
    PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, mb(scale, fp_mb))
}

/// `passes` back-to-back launches of the same kernel.
fn repeat(kernel: Kernel, passes: u32) -> Vec<Kernel> {
    (0..passes).map(|_| kernel.clone()).collect()
}

fn stream(scale: MemScale, fp_mb: f64) -> PatternSpec {
    PatternSpec::new(PatternKind::Streaming, mb(scale, fp_mb))
}

fn mix(scale: MemScale, fp_mb: f64, levels: Vec<(f64, f64)>) -> PatternSpec {
    PatternSpec::new(PatternKind::WorkingSetMix { levels }, mb(scale, fp_mb))
}

/// Gradual miss-rate-curve levels: a nest of working sets spanning the
/// whole footprint plus a streaming tail that never fits any LLC, giving
/// the gently declining curve graph/irregular workloads exhibit (bfs in
/// Fig. 2). Fractions above 1.0 model cold streaming beyond the resident
/// working set.
fn gradual_levels() -> Vec<(f64, f64)> {
    vec![
        (0.30, 0.015),
        (0.12, 0.075),
        (0.05, 0.15),
        (0.05, 0.3),
        (0.05, 0.6),
        (0.05, 1.0),
        (0.05, 2.0),
        (0.33, 16.0),
    ]
}

fn k(name: &str, ctas: u32, spec: PatternSpec) -> Kernel {
    Kernel::new(name, ctas, CTA_THREADS, spec)
}

/// Builds the 21-benchmark strong-scaling suite of Table II.
///
/// # Example
///
/// ```
/// use gsim_trace::{suite::strong_suite, MemScale};
///
/// let suite = strong_suite(MemScale::default());
/// assert_eq!(suite.len(), 21);
/// assert!(suite.iter().any(|b| b.abbr == "dct"));
/// ```
pub fn strong_suite(scale: MemScale) -> Vec<StrongBenchmark> {
    vec![
        dct(scale),
        fwt(scale),
        bp(scale),
        va(scale),
        r#as(scale),
        lu(scale),
        st(scale),
        bfs(scale),
        unet(scale),
        sr(scale),
        gr(scale),
        btree(scale),
        pf(scale),
        res50(scale),
        res34(scale),
        ht(scale),
        at(scale),
        gemm(scale),
        mm2(scale),
        lbm(scale),
        bs(scale),
    ]
}

/// Looks a benchmark up by abbreviation.
pub fn strong_benchmark(abbr: &str, scale: MemScale) -> Option<StrongBenchmark> {
    strong_suite(scale).into_iter().find(|b| b.abbr == abbr)
}

// --- super-linear: reused working sets that fit the target LLC ---------

fn dct(scale: MemScale) -> StrongBenchmark {
    // Reused working set between the 17 MB (64-SM) and 34 MB (128-SM)
    // LLCs: the Figure 2 (left) cliff. The sweep covers ~23 MB of the
    // 33 MB footprint — the actively reused transform planes — which
    // leaves the set-imbalance margin a real cache needs to actually
    // hold a working set (a 33 MB set on a 34 MB LRU cache still
    // thrashes a fraction of its sets).
    let spec = sweep(scale, 23.4).compute_per_mem(3.0).write_frac(0.1);
    StrongBenchmark {
        abbr: "dct",
        full_name: "Discrete Cosine Transform",
        origin: "CUDA SDK",
        cta_sizes_paper: "2,304; 36,864; 512",
        expected: ScalingClass::SuperLinear,
        workload: Workload::new("dct", 101, repeat(k("dct8x8", 768, spec), 8))
            .with_footprint_mb(33.0)
            .with_paper_minsns(10_270.0),
    }
}

fn fwt(scale: MemScale) -> StrongBenchmark {
    // 67 MB footprint streamed once, with a ~30 MB reused transform core:
    // cliff appears only at the 34 MB 128-SM LLC.
    let cold = stream(scale, 33.0).compute_per_mem(2.8);
    let hot = sweep(scale, 23.0).compute_per_mem(2.8);
    StrongBenchmark {
        abbr: "fwt",
        full_name: "FastWalsh Transform",
        origin: "CUDA SDK",
        cta_sizes_paper: "8,192; 4,096; 128",
        expected: ScalingClass::SuperLinear,
        workload: Workload::new("fwt", 102, {
            let mut ks = vec![k("init", 768, cold)];
            ks.extend(repeat(k("walsh", 768, hot), 10));
            ks
        })
        .with_footprint_mb(67.1)
        .with_paper_minsns(4_163.0),
    }
}

fn bp(scale: MemScale) -> StrongBenchmark {
    // 18.8 MB fits only the 34 MB LLC: cliff at 128 SMs.
    let spec = sweep(scale, 18.8).compute_per_mem(3.0).write_frac(0.15);
    StrongBenchmark {
        abbr: "bp",
        full_name: "Back Propagation",
        origin: "Rodinia",
        cta_sizes_paper: "8,192",
        expected: ScalingClass::SuperLinear,
        workload: Workload::new("bp", 103, repeat(k("layerforward", 768, spec), 8))
            .with_footprint_mb(18.8)
            .with_paper_minsns(424.0),
    }
}

fn va(scale: MemScale) -> StrongBenchmark {
    // 50.3 MB footprint; the iterated vector core (~26 MB) is what fits
    // the target LLC and produces super-linear scaling.
    let cold = stream(scale, 25.0).compute_per_mem(2.6);
    let hot = sweep(scale, 24.0).compute_per_mem(2.6);
    StrongBenchmark {
        abbr: "va",
        full_name: "Vector Add",
        origin: "CUDA SDK",
        cta_sizes_paper: "16,384",
        expected: ScalingClass::SuperLinear,
        workload: Workload::new("va", 104, {
            let mut ks = vec![k("init", 768, cold)];
            ks.extend(repeat(k("vadd", 768, hot), 10));
            ks
        })
        .with_footprint_mb(50.3)
        .with_paper_minsns(92.0),
    }
}

fn r#as(scale: MemScale) -> StrongBenchmark {
    let cold = stream(scale, 30.0).compute_per_mem(2.4);
    let hot = sweep(scale, 25.0).compute_per_mem(2.4);
    StrongBenchmark {
        abbr: "as",
        full_name: "Async",
        origin: "CUDA SDK",
        cta_sizes_paper: "32,768",
        expected: ScalingClass::SuperLinear,
        workload: Workload::new("as", 105, {
            let mut ks = vec![k("copy", 768, cold)];
            ks.extend(repeat(k("async", 768, hot), 10));
            ks
        })
        .with_footprint_mb(67.1)
        .with_paper_minsns(218.0),
    }
}

fn lu(scale: MemScale) -> StrongBenchmark {
    // The reused ~11.5 MB decomposition core fits the 17 MB 64-SM LLC
    // (with set-imbalance margin) but not the 8.5 MB 32-SM one: the
    // earliest cliff in the suite, as the paper's 16.8 MB footprint
    // implies.
    let spec = sweep(scale, 11.5).compute_per_mem(3.2).write_frac(0.2);
    StrongBenchmark {
        abbr: "lu",
        full_name: "LU decomposition",
        origin: "Polybench",
        cta_sizes_paper: "16,384",
        expected: ScalingClass::SuperLinear,
        workload: Workload::new("lu", 106, repeat(k("lud", 768, spec), 12))
            .with_footprint_mb(16.8)
            .with_paper_minsns(146.0),
    }
}

fn st(scale: MemScale) -> StrongBenchmark {
    // Large streamed grid with a ~32 MB reused plane of the 3-D stencil.
    let cold = stream(scale, 33.0).compute_per_mem(3.0);
    let hot = sweep(scale, 24.5).compute_per_mem(3.0).write_frac(0.25);
    StrongBenchmark {
        abbr: "st",
        full_name: "Stencil",
        origin: "Parboil",
        cta_sizes_paper: "2,096",
        expected: ScalingClass::SuperLinear,
        workload: Workload::new("st", 107, {
            let mut ks = vec![k("sweep", 768, cold)];
            ks.extend(repeat(k("stencil", 768, hot), 10));
            ks
        })
        .with_footprint_mb(131.9)
        .with_paper_minsns(557.0),
    }
}

// --- sub-linear: imbalance and slice camping ----------------------------

fn bfs(scale: MemScale) -> StrongBenchmark {
    // Level-synchronous BFS: one kernel per frontier level. Small levels
    // cannot fill a large GPU — the paper's workload–architecture
    // imbalance. Divergent, atomic-heavy irregular accesses give the
    // gradual Figure 2 (middle) miss-rate curve.
    let frontier = |ctas: u32| {
        k(
            "frontier",
            ctas,
            mix(scale, 20.4, gradual_levels())
                .mem_ops_per_warp(24)
                .compute_per_mem(4.0)
                .divergence(1)
                .shared_hot(0.015, 16),
        )
    };
    // Tiny frontier levels bracketing each full-graph level: the tiny
    // kernels cannot fill even an 8-SM GPU, so imbalance bites from the
    // smallest scale model onward and worsens hyperbolically with size
    // (T ~ A/size + B), the paper's bfs trajectory (1.8x, 1.55x, 1.43x).
    let grids = [16, 768, 16, 16, 768, 16, 16, 768, 16];
    StrongBenchmark {
        abbr: "bfs",
        full_name: "Breadth-First Search",
        origin: "Rodinia",
        cta_sizes_paper: "1,024",
        expected: ScalingClass::SubLinear,
        workload: Workload::new("bfs", 108, grids.iter().map(|&g| frontier(g)).collect())
            .with_footprint_mb(20.4)
            .with_paper_minsns(257.0),
    }
}

fn unet(scale: MemScale) -> StrongBenchmark {
    // Encoder/decoder layer pyramid: grid sizes shrink toward the
    // bottleneck layers, starving large GPUs.
    let layer = |name: &str, ctas: u32| {
        k(
            name,
            ctas,
            mix(scale, 615.0, vec![(0.55, 0.002), (0.45, 4.0)])
                .mem_ops_per_warp(20)
                .compute_per_mem(4.0),
        )
    };
    let grids = [
        ("enc0", 768),
        ("enc1", 24),
        ("enc2", 768),
        ("bottleneck", 24),
        ("dec2", 768),
        ("dec1", 24),
        ("dec0", 768),
    ];
    StrongBenchmark {
        abbr: "unet",
        full_name: "3D-unet",
        origin: "MLPerf",
        cta_sizes_paper: "from 128 to 21,846",
        expected: ScalingClass::SubLinear,
        workload: Workload::new(
            "unet",
            109,
            grids.iter().map(|&(n, g)| layer(n, g)).collect(),
        )
        .with_footprint_mb(615.0)
        .with_paper_minsns(20_071.0),
    }
}

fn sr(scale: MemScale) -> StrongBenchmark {
    // Speckle-reducing anisotropic diffusion: big stencil kernels
    // interleaved with tiny reduction kernels.
    let big = || {
        k(
            "srad",
            768,
            mix(scale, 25.2, gradual_levels())
                .mem_ops_per_warp(20)
                .compute_per_mem(3.5)
                .divergence(1),
        )
    };
    let reduce = || {
        k(
            "reduce",
            8,
            mix(scale, 25.2, vec![(0.6, 0.01), (0.4, 8.0)])
                .mem_ops_per_warp(24)
                .compute_per_mem(3.5),
        )
    };
    StrongBenchmark {
        abbr: "sr",
        full_name: "Sradv2",
        origin: "Rodinia",
        cta_sizes_paper: "4,096",
        expected: ScalingClass::SubLinear,
        workload: Workload::new(
            "sr",
            110,
            vec![big(), reduce(), reduce(), big(), reduce(), reduce()],
        )
        .with_footprint_mb(25.2)
        .with_paper_minsns(661.0),
    }
}

fn gr(scale: MemScale) -> StrongBenchmark {
    // The paper's own kernel grids (4,096; 816; 1,536; 2,048): the odd-
    // sized grids leave waves partially empty on large machines.
    let grad = |name: &str, ctas: u32| {
        k(
            name,
            ctas,
            mix(scale, 46.1, gradual_levels())
                .mem_ops_per_warp(15)
                .compute_per_mem(3.5)
                .divergence(1)
                .shared_hot(0.01, 24),
        )
    };
    StrongBenchmark {
        abbr: "gr",
        full_name: "Gradient",
        origin: "CUDA SDK",
        cta_sizes_paper: "4,096; 816; 1,536; 2,048",
        expected: ScalingClass::SubLinear,
        workload: Workload::new(
            "gr",
            111,
            vec![
                grad("gx", 768),
                grad("gy", 8),
                grad("sobel", 8),
                grad("mag", 768),
                grad("dir", 8),
                grad("gx2", 768),
                grad("gy2", 8),
                grad("nms", 8),
                grad("hyst", 8),
                grad("trace", 8),
                grad("mag2", 768),
            ],
        )
        .with_footprint_mb(46.1)
        .with_paper_minsns(318.0),
    }
}

fn btree(scale: MemScale) -> StrongBenchmark {
    // B+tree traversals: divergent pointer chasing plus atomics on the few
    // lines of the top tree levels — LLC-slice camping grows with SM count
    // (the paper's shared-data-congestion mechanism).
    let lookup = |name: &str, ctas: u32| {
        k(
            name,
            ctas,
            mix(scale, 17.4, vec![(0.35, 0.004), (0.15, 0.08), (0.5, 16.0)])
                .mem_ops_per_warp(24)
                .compute_per_mem(3.0)
                .divergence(1)
                .shared_hot(0.02, 24),
        )
    };
    StrongBenchmark {
        abbr: "btree",
        full_name: "B+trees",
        origin: "Rodinia",
        cta_sizes_paper: "6,000; 10,000",
        expected: ScalingClass::SubLinear,
        workload: Workload::new(
            "btree",
            112,
            vec![
                lookup("init", 8),
                lookup("findK", 768),
                lookup("transfer", 8),
                lookup("transfer2", 8),
                lookup("findRangeK", 768),
                lookup("maintain", 8),
                lookup("maintain2", 8),
                lookup("findRangeK2", 768),
                lookup("teardown", 8),
            ],
        )
        .with_footprint_mb(17.4)
        .with_paper_minsns(670.0),
    }
}

// --- linear: compute-bound, or footprints beyond every LLC -------------

fn pf(scale: MemScale) -> StrongBenchmark {
    // 404 MB footprint dwarfs even the 34 MB target LLC: high, flat MPKI
    // and linear scaling under proportional resources (Fig. 2 right).
    let spec = sweep(scale, 404.1).compute_per_mem(2.0).write_frac(0.1);
    StrongBenchmark {
        abbr: "pf",
        full_name: "Path Finder",
        origin: "Rodinia",
        cta_sizes_paper: "4,630",
        expected: ScalingClass::Linear,
        workload: Workload::new("pf", 113, repeat(k("dynproc", 4608, spec), 2))
            .with_footprint_mb(404.1)
            .with_paper_minsns(4_037.0),
    }
}

fn res50(scale: MemScale) -> StrongBenchmark {
    // Compute-heavy convolutions streaming activations/weights far larger
    // than any LLC. (Modelled stream coverage is capped below the paper's
    // 1.4 GB; beyond "much larger than the LLC" extra coverage changes
    // nothing — DESIGN.md §5.)
    let spec = stream(scale, 200.0).compute_per_mem(6.0);
    StrongBenchmark {
        abbr: "res50",
        full_name: "Resnet50",
        origin: "MLPerf",
        cta_sizes_paper: "from 64 to 66,904",
        expected: ScalingClass::Linear,
        workload: Workload::new("res50", 114, vec![k("conv", 3072, spec)])
            .with_footprint_mb(1_388.1)
            .with_paper_minsns(85_067.0),
    }
}

fn res34(scale: MemScale) -> StrongBenchmark {
    let spec = stream(scale, 160.0).compute_per_mem(5.0);
    StrongBenchmark {
        abbr: "res34",
        full_name: "SSD-Resnet34",
        origin: "MLPerf",
        cta_sizes_paper: "from 32 to 306,383",
        expected: ScalingClass::Linear,
        workload: Workload::new("res34", 115, vec![k("conv", 3072, spec)])
            .with_footprint_mb(845.8)
            .with_paper_minsns(47_369.0),
    }
}

fn ht(scale: MemScale) -> StrongBenchmark {
    // 12.5 MB footprint smaller than the big LLCs, but almost zero reuse
    // (paper Section IV.2): fitting the cache buys nothing, scaling stays
    // linear. One cold pass plus a compute epilogue.
    let spec = stream(scale, 12.5).compute_per_mem(1.0).tail_compute(60);
    StrongBenchmark {
        abbr: "ht",
        full_name: "HotSpot",
        origin: "Rodinia",
        cta_sizes_paper: "7,396",
        expected: ScalingClass::Linear,
        workload: Workload::new("ht", 116, vec![k("hotspot", 3840, spec)])
            .with_footprint_mb(12.5)
            .with_paper_minsns(421.0),
    }
}

fn at(scale: MemScale) -> StrongBenchmark {
    let spec = sweep(scale, 100.0).compute_per_mem(1.0);
    StrongBenchmark {
        abbr: "at",
        full_name: "Aligned Types",
        origin: "CUDA SDK",
        cta_sizes_paper: "2,048",
        expected: ScalingClass::Linear,
        workload: Workload::new("at", 117, repeat(k("aligned", 3072, spec), 4))
            .with_footprint_mb(100.0)
            .with_paper_minsns(2_150.0),
    }
}

fn gemm(scale: MemScale) -> StrongBenchmark {
    // Blocked matrix multiply: tile reuse is captured next to the SM, and
    // arithmetic intensity dominates — memory is never the bottleneck, so
    // scaling is linear even though 12.6 MB would fit the big LLCs
    // (the paper's point that fitting is necessary but not sufficient).
    let spec = PatternSpec::new(
        PatternKind::Tiled {
            tile_lines: 4,
            reuses: 24,
        },
        mb(scale, 12.6),
    )
    .mem_ops_per_warp(24)
    .compute_per_mem(10.0);
    StrongBenchmark {
        abbr: "gemm",
        full_name: "Matrix-multiply C=alpha.A.B+beta.C",
        origin: "Polybench",
        cta_sizes_paper: "4,096",
        expected: ScalingClass::Linear,
        workload: Workload::new("gemm", 118, vec![k("gemm", 768, spec)])
            .with_footprint_mb(12.6)
            .with_paper_minsns(7_030.0),
    }
}

fn mm2(scale: MemScale) -> StrongBenchmark {
    let tile = |name: &str| {
        k(
            name,
            768,
            PatternSpec::new(
                PatternKind::Tiled {
                    tile_lines: 4,
                    reuses: 16,
                },
                mb(scale, 21.0),
            )
            .mem_ops_per_warp(16)
            .compute_per_mem(8.0),
        )
    };
    StrongBenchmark {
        abbr: "2mm",
        full_name: "2 Matrix Multiplications",
        origin: "Polybench",
        cta_sizes_paper: "8,192",
        expected: ScalingClass::Linear,
        workload: Workload::new("2mm", 119, vec![tile("mm1"), tile("mm2")])
            .with_footprint_mb(21.0)
            .with_paper_minsns(12_921.0),
    }
}

fn lbm(scale: MemScale) -> StrongBenchmark {
    let spec = sweep(scale, 359.4).compute_per_mem(1.2).write_frac(0.3);
    StrongBenchmark {
        abbr: "lbm",
        full_name: "Lattice-Boltzmann Method",
        origin: "Parboil",
        cta_sizes_paper: "18,000",
        expected: ScalingClass::Linear,
        workload: Workload::new("lbm", 120, repeat(k("stream-collide", 4608, spec), 2))
            .with_footprint_mb(359.4)
            .with_paper_minsns(553.0),
    }
}

fn bs(scale: MemScale) -> StrongBenchmark {
    let spec = sweep(scale, 80.1).compute_per_mem(3.0).write_frac(0.2);
    StrongBenchmark {
        abbr: "bs",
        full_name: "Black Scholes",
        origin: "CUDA SDK",
        cta_sizes_paper: "15,625",
        expected: ScalingClass::Linear,
        workload: Workload::new("bs", 121, repeat(k("blackscholes", 3072, spec), 3))
            .with_footprint_mb(80.1)
            .with_paper_minsns(863.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_21_benchmarks() {
        let suite = strong_suite(MemScale::default());
        assert_eq!(suite.len(), 21);
        let abbrs: Vec<&str> = suite.iter().map(|b| b.abbr).collect();
        for a in [
            "dct", "fwt", "bp", "va", "as", "lu", "st", "bfs", "unet", "sr", "gr", "btree", "pf",
            "res50", "res34", "ht", "at", "gemm", "2mm", "lbm", "bs",
        ] {
            assert!(abbrs.contains(&a), "missing {a}");
        }
    }

    #[test]
    fn classification_counts_match_table_2() {
        let suite = strong_suite(MemScale::default());
        let count = |c: ScalingClass| suite.iter().filter(|b| b.expected == c).count();
        assert_eq!(count(ScalingClass::SuperLinear), 7);
        assert_eq!(count(ScalingClass::SubLinear), 5);
        assert_eq!(count(ScalingClass::Linear), 9);
    }

    #[test]
    fn lookup_by_abbr() {
        let b = strong_benchmark("dct", MemScale::default()).expect("dct exists");
        assert_eq!(b.workload.footprint_mb_paper(), 33.0);
        assert!(strong_benchmark("nope", MemScale::default()).is_none());
    }

    #[test]
    fn super_linear_working_sets_straddle_the_llc_range() {
        // The reused working set of every super-linear benchmark must lie
        // between the smallest scale-model LLC and the largest target LLC,
        // otherwise no cliff can appear in the studied range.
        let scale = MemScale::default();
        let llc_min = scale.mb_to_model_lines(2.125);
        let llc_max = scale.mb_to_model_lines(34.0);
        for b in strong_suite(scale) {
            if b.expected == ScalingClass::SuperLinear {
                let reused = b
                    .workload
                    .kernels()
                    .iter()
                    .filter(|k| matches!(k.spec().kind(), PatternKind::GlobalSweep { .. }))
                    .map(|k| k.spec().footprint_lines())
                    .max()
                    .expect("super-linear benchmark must have a reused sweep");
                assert!(
                    reused > llc_min && reused <= llc_max,
                    "{}: reused working set {} lines outside ({llc_min}, {llc_max}]",
                    b.abbr,
                    reused
                );
            }
        }
    }

    #[test]
    fn workload_sizes_are_tractable() {
        // The whole suite should stay within a laptop-scale instruction
        // budget (DESIGN.md §5): each benchmark 0.1M..8M warp instructions.
        for b in strong_suite(MemScale::default()) {
            let wi = b.workload.approx_warp_instrs();
            assert!(
                (100_000..8_000_000).contains(&wi),
                "{}: {} warp instructions outside budget",
                b.abbr,
                wi
            );
        }
    }

    #[test]
    fn footprints_report_paper_units() {
        for b in strong_suite(MemScale::default()) {
            assert!(b.workload.footprint_mb_paper() > 0.0, "{}", b.abbr);
            assert!(b.workload.paper_minsns() > 0.0, "{}", b.abbr);
        }
    }

    #[test]
    fn workloads_are_deterministic_across_builds() {
        let a = strong_benchmark("bfs", MemScale::default()).unwrap();
        let b = strong_benchmark("bfs", MemScale::default()).unwrap();
        assert_eq!(a.workload, b.workload);
    }
}
