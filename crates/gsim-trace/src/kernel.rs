//! Kernels, grids, and workloads.

use crate::pattern::{PatternSpec, SpecStream, StreamCtx};
use crate::THREADS_PER_WARP;

/// One GPU kernel launch: a grid of CTAs, each a fixed number of threads,
/// all running the same access pattern. Kernels of a [`Workload`] execute
/// back-to-back with an implicit barrier in between, as on a real GPU
/// stream — small grids in the sequence are what starve large GPUs and
/// produce the paper's sub-linear "workload–architecture imbalance".
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    name: String,
    n_ctas: u32,
    threads_per_cta: u32,
    spec: PatternSpec,
}

impl Kernel {
    /// Creates a kernel launching `n_ctas` CTAs of `threads_per_cta`
    /// threads running `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or `threads_per_cta` is 0 or > 1024
    /// (the CUDA limit).
    pub fn new(
        name: impl Into<String>,
        n_ctas: u32,
        threads_per_cta: u32,
        spec: PatternSpec,
    ) -> Self {
        assert!(n_ctas > 0, "grid must have at least one CTA");
        assert!(
            (1..=1024).contains(&threads_per_cta),
            "threads per CTA must be in 1..=1024, got {threads_per_cta}"
        );
        Self {
            name: name.into(),
            n_ctas,
            threads_per_cta,
            spec,
        }
    }

    /// Kernel name (for reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of CTAs in the grid.
    pub fn n_ctas(&self) -> u32 {
        self.n_ctas
    }

    /// Threads per CTA.
    pub fn threads_per_cta(&self) -> u32 {
        self.threads_per_cta
    }

    /// Warps per CTA (threads rounded up to whole warps).
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta.div_ceil(THREADS_PER_WARP)
    }

    /// Total warps in the grid.
    pub fn total_warps(&self) -> u64 {
        u64::from(self.n_ctas) * u64::from(self.warps_per_cta())
    }

    /// The access pattern.
    pub fn spec(&self) -> &PatternSpec {
        &self.spec
    }

    /// Stream context for warp `warp` of CTA `cta` in kernel `kernel_idx`
    /// of `workload`.
    pub fn stream_ctx(
        &self,
        workload: &Workload,
        kernel_idx: usize,
        cta: u32,
        warp: u32,
    ) -> StreamCtx {
        let global_warp = u64::from(cta) * u64::from(self.warps_per_cta()) + u64::from(warp);
        StreamCtx {
            global_warp,
            total_warps: self.total_warps(),
            seed: mix_seed(workload.seed(), kernel_idx as u64, global_warp),
        }
    }

    /// Creates the deterministic instruction stream for one warp.
    ///
    /// # Panics
    ///
    /// Panics if `cta` or `warp` is outside the grid.
    pub fn warp_stream(
        &self,
        workload: &Workload,
        kernel_idx: usize,
        cta: u32,
        warp: u32,
    ) -> SpecStream {
        assert!(
            cta < self.n_ctas,
            "CTA {cta} outside grid of {}",
            self.n_ctas
        );
        assert!(
            warp < self.warps_per_cta(),
            "warp {warp} outside CTA of {} warps",
            self.warps_per_cta()
        );
        SpecStream::new(
            self.spec.clone(),
            self.stream_ctx(workload, kernel_idx, cta, warp),
        )
    }

    /// Approximate warp instructions the whole kernel executes.
    pub fn approx_warp_instrs(&self, workload: &Workload, kernel_idx: usize) -> u64 {
        // All warps of a kernel execute the same op count for a given grid,
        // so sample warp 0.
        let ctx = self.stream_ctx(workload, kernel_idx, 0, 0);
        self.spec.warp_instrs_for(&ctx) * self.total_warps()
    }
}

/// SplitMix64-style seed mixing for per-warp determinism.
fn mix_seed(seed: u64, kernel: u64, global_warp: u64) -> u64 {
    let mut z = seed
        .wrapping_add(kernel.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(global_warp.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A complete workload: an ordered kernel sequence plus reporting metadata
/// (the paper-units footprint and instruction count shown in Tables II/IV).
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    name: String,
    seed: u64,
    kernels: Vec<Kernel>,
    footprint_mb_paper: f64,
    paper_minsns: f64,
}

impl Workload {
    /// Creates a workload from a kernel sequence.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty.
    pub fn new(name: impl Into<String>, seed: u64, kernels: Vec<Kernel>) -> Self {
        assert!(!kernels.is_empty(), "workload needs at least one kernel");
        Self {
            name: name.into(),
            seed,
            kernels,
            footprint_mb_paper: 0.0,
            paper_minsns: 0.0,
        }
    }

    /// Attaches the paper-units footprint (MB) for reporting.
    pub fn with_footprint_mb(mut self, mb: f64) -> Self {
        self.footprint_mb_paper = mb;
        self
    }

    /// Attaches the paper-units instruction count (millions) for reporting.
    pub fn with_paper_minsns(mut self, m: f64) -> Self {
        self.paper_minsns = m;
        self
    }

    /// Workload name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Base RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The kernel sequence.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// Footprint in paper units (MB), as published in Tables II/IV.
    pub fn footprint_mb_paper(&self) -> f64 {
        self.footprint_mb_paper
    }

    /// Dynamic instructions in paper units (millions).
    pub fn paper_minsns(&self) -> f64 {
        self.paper_minsns
    }

    /// Largest model-units footprint over the kernels, in lines.
    pub fn max_footprint_lines(&self) -> u64 {
        self.kernels
            .iter()
            .map(|k| k.spec().footprint_lines())
            .max()
            .unwrap_or(0)
    }

    /// Total CTAs across all kernels.
    pub fn total_ctas(&self) -> u64 {
        self.kernels.iter().map(|k| u64::from(k.n_ctas())).sum()
    }

    /// Approximate total warp instructions over all kernels.
    pub fn approx_warp_instrs(&self) -> u64 {
        self.kernels
            .iter()
            .enumerate()
            .map(|(i, k)| k.approx_warp_instrs(self, i))
            .sum()
    }

    /// Approximate total thread instructions (warp instructions × 32).
    pub fn approx_thread_instrs(&self) -> u64 {
        self.approx_warp_instrs() * u64::from(THREADS_PER_WARP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{PatternKind, WarpStream};

    fn demo() -> Workload {
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 2 }, 1024).compute_per_mem(1.0);
        Workload::new("demo", 7, vec![Kernel::new("k0", 8, 256, spec)])
            .with_footprint_mb(33.0)
            .with_paper_minsns(10_270.0)
    }

    #[test]
    fn warps_per_cta_rounds_up() {
        let spec = PatternSpec::new(PatternKind::Streaming, 64);
        let k = Kernel::new("k", 4, 100, spec);
        assert_eq!(k.warps_per_cta(), 4); // ceil(100/32)
        assert_eq!(k.total_warps(), 16);
    }

    #[test]
    fn different_warps_get_different_seeds() {
        let wl = demo();
        let k = &wl.kernels()[0];
        let a = k.stream_ctx(&wl, 0, 0, 0);
        let b = k.stream_ctx(&wl, 0, 0, 1);
        let c = k.stream_ctx(&wl, 0, 1, 0);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.seed, c.seed);
        assert_ne!(b.seed, c.seed);
    }

    #[test]
    fn same_workload_same_stream() {
        let wl = demo();
        let k = &wl.kernels()[0];
        let collect = |cta, warp| {
            let mut s = k.warp_stream(&wl, 0, cta, warp);
            std::iter::from_fn(move || s.next_op()).collect::<Vec<_>>()
        };
        assert_eq!(collect(3, 2), collect(3, 2));
        assert_ne!(collect(3, 2), collect(3, 3));
    }

    #[test]
    fn metadata_is_preserved() {
        let wl = demo();
        assert_eq!(wl.footprint_mb_paper(), 33.0);
        assert_eq!(wl.paper_minsns(), 10_270.0);
        assert_eq!(wl.total_ctas(), 8);
        assert!(wl.approx_warp_instrs() > 0);
        assert_eq!(wl.approx_thread_instrs(), wl.approx_warp_instrs() * 32);
    }

    #[test]
    #[should_panic(expected = "outside grid")]
    fn rejects_out_of_grid_cta() {
        let wl = demo();
        let _ = wl.kernels()[0].warp_stream(&wl, 0, 99, 0);
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn rejects_empty_workload() {
        let _ = Workload::new("empty", 0, vec![]);
    }
}
