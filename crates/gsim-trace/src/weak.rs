//! The weak-scaling benchmark suite (paper Table IV).
//!
//! Under weak scaling the workload grows with the system: the paper scales
//! six benchmarks' inputs so the work per SM stays constant, giving five
//! input sizes matched to the 8-, 16-, 32-, 64- and 128-SM systems. A
//! subset of rows (the `MCM` column of Table IV) is reused for the
//! multi-chiplet case study, where the same workloads are scaled to 4-, 8-
//! and 16-chiplet systems of 64 SMs each.
//!
//! Synthetic model workloads scale exactly like the paper's inputs: grid
//! sizes and footprints grow proportionally with the *scale factor*
//! (target size ÷ 8 SMs), while fixed-size components — bfs's small
//! frontier kernels, bs's shared reduction counters — stay fixed, which is
//! what makes those two benchmarks sub-linear under weak scaling.

use crate::kernel::{Kernel, Workload};
use crate::pattern::{PatternKind, PatternSpec};
use crate::scale::MemScale;
use crate::suite::{ScalingClass, CTA_THREADS};

/// One row of Table IV: an input size matched to one system size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeakRow {
    /// CTA count published in Table IV.
    pub ctas_paper: u32,
    /// Footprint in MB published in Table IV.
    pub footprint_mb: f64,
    /// Simulated instructions (millions) published in Table IV.
    pub minsns: f64,
    /// Whether this row carries the MCM checkmark.
    pub mcm: bool,
}

/// Which of the six weak-scalable benchmarks this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WeakKind {
    Bfs,
    Bs,
    Btree,
    As,
    Bp,
    Va,
}

/// A Table IV benchmark: five scaled inputs plus the workload builder.
#[derive(Debug, Clone)]
pub struct WeakBenchmark {
    /// Abbreviation (bfs, bs, btree, as, bp, va).
    pub abbr: &'static str,
    /// The paper's weak-scaling classification (Table IV).
    pub expected: ScalingClass,
    /// The five input rows, smallest (8-SM) first.
    pub rows: [WeakRow; 5],
    kind: WeakKind,
    scale: MemScale,
}

/// The system sizes the five rows correspond to.
pub const WEAK_SM_SIZES: [u32; 5] = [8, 16, 32, 64, 128];

impl WeakBenchmark {
    /// The workload for row `row` (0 = the 8-SM input).
    ///
    /// # Panics
    ///
    /// Panics if `row >= 5`.
    pub fn workload_for_row(&self, row: usize) -> Workload {
        assert!(row < 5, "Table IV has five rows");
        let factor = 1u64 << row;
        self.build(factor, self.rows[row].footprint_mb)
            .with_paper_minsns(self.rows[row].minsns)
    }

    /// The workload matched to an `n_sms`-SM system (must be one of
    /// [`WEAK_SM_SIZES`]).
    ///
    /// # Panics
    ///
    /// Panics if `n_sms` is not 8, 16, 32, 64 or 128.
    pub fn workload_for_sms(&self, n_sms: u32) -> Workload {
        let row = WEAK_SM_SIZES
            .iter()
            .position(|&s| s == n_sms)
            .unwrap_or_else(|| panic!("no weak-scaling input for {n_sms} SMs"));
        self.workload_for_row(row)
    }

    /// The workload scaled to an `n_chiplets`-chiplet MCM system of 64 SMs
    /// per chiplet (Section VII.D): the scale factor relative to the 8-SM
    /// base is `64 * n_chiplets / 8`.
    ///
    /// # Panics
    ///
    /// Panics if `n_chiplets` is zero.
    pub fn workload_for_chiplets(&self, n_chiplets: u32) -> Workload {
        assert!(n_chiplets > 0, "need at least one chiplet");
        let factor = u64::from(n_chiplets) * 8;
        let fp_mb = self.rows[0].footprint_mb * factor as f64;
        self.build(factor, fp_mb)
    }

    /// Rows carrying the MCM checkmark, if this benchmark participates in
    /// the multi-chiplet case study (btree is excluded, as in the paper).
    pub fn mcm_rows(&self) -> Option<[usize; 3]> {
        if self.kind == WeakKind::Btree {
            return None;
        }
        let marked: Vec<usize> = self
            .rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r.mcm)
            .map(|(i, _)| i)
            .collect();
        marked.try_into().ok()
    }

    /// Builds the synthetic workload for an arbitrary scale `factor`
    /// (1 = the 8-SM base input) and footprint.
    fn build(&self, factor: u64, footprint_mb: f64) -> Workload {
        let s = self.scale;
        let fp = s.mb_to_model_lines(footprint_mb);
        let grid = |base: u64| u32::try_from(base * factor).expect("grid overflow");
        // Round a sweep footprint up to a whole number of lines per warp,
        // so every input size wraps identically (a fractional final wrap
        // would otherwise change the reuse composition between rows and
        // perturb the correction factor the predictor measures).
        let sweep_fp = |fp: u64, grid_ctas: u32| {
            let warps = u64::from(grid_ctas) * 8;
            fp.div_ceil(warps) * warps
        };
        let seed = 500 + self.kind as u64;
        let k =
            |name: &str, ctas: u32, spec: PatternSpec| Kernel::new(name, ctas, CTA_THREADS, spec);
        let wl = match self.kind {
            WeakKind::Bfs => {
                // Frontier pyramid: the big levels scale with the input,
                // the first/last levels stay tiny regardless of scale.
                let level = |ctas: u32| {
                    k(
                        "frontier",
                        ctas,
                        PatternSpec::new(
                            PatternKind::WorkingSetMix {
                                levels: vec![
                                    (0.30, 0.015),
                                    (0.12, 0.075),
                                    (0.05, 0.15),
                                    (0.05, 0.3),
                                    (0.05, 0.6),
                                    (0.05, 1.0),
                                    (0.05, 2.0),
                                    (0.33, 16.0),
                                ],
                            },
                            fp,
                        )
                        .mem_ops_per_warp(24)
                        .compute_per_mem(3.0)
                        .divergence(2)
                        .shared_hot(0.03, 16),
                    )
                };
                Workload::new(
                    "bfs-weak",
                    seed,
                    vec![
                        level(16),
                        level(grid(32)),
                        level(grid(128)),
                        level(grid(32)),
                        level(16),
                    ],
                )
            }
            WeakKind::Bs => {
                // Option pricing over a scaled array, with fixed shared
                // accumulation counters that camp on LLC slices. Reuse
                // happens across kernel relaunches, as in the strong suite.
                let ctas = grid(256);
                let spec =
                    PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, sweep_fp(fp, ctas))
                        .compute_per_mem(3.0)
                        .write_frac(0.2)
                        .shared_hot(0.03, 16);
                let kernel = k("blackscholes", ctas, spec);
                Workload::new(
                    "bs-weak",
                    seed,
                    vec![kernel.clone(), kernel.clone(), kernel],
                )
            }
            WeakKind::Btree => {
                // The tree grows with the input, so the top levels (the hot
                // set) grow too — camping pressure stays constant: linear.
                let hot_lines = 12 * factor;
                let lookup = |name: &str, base: u64| {
                    k(
                        name,
                        grid(base),
                        PatternSpec::new(PatternKind::PointerChase, fp)
                            .mem_ops_per_warp(30)
                            .compute_per_mem(1.0)
                            .divergence(6)
                            .shared_hot(0.05, hot_lines),
                    )
                };
                Workload::new(
                    "btree-weak",
                    seed,
                    vec![lookup("findK", 72), lookup("findRangeK", 120)],
                )
            }
            WeakKind::As => {
                let ctas = grid(256);
                let spec =
                    PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, sweep_fp(fp, ctas))
                        .compute_per_mem(0.8)
                        .write_frac(0.1);
                let kernel = k("async", ctas, spec);
                Workload::new("as-weak", seed, vec![kernel; 4])
            }
            WeakKind::Bp => {
                let ctas = grid(192);
                let spec =
                    PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, sweep_fp(fp, ctas))
                        .compute_per_mem(2.0)
                        .write_frac(0.15);
                let kernel = k("layerforward", ctas, spec);
                Workload::new("bp-weak", seed, vec![kernel; 6])
            }
            WeakKind::Va => {
                let ctas = grid(128);
                let spec =
                    PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, sweep_fp(fp, ctas))
                        .compute_per_mem(1.0)
                        .write_frac(0.33);
                let kernel = k("vadd", ctas, spec);
                Workload::new("va-weak", seed, vec![kernel; 4])
            }
        };
        wl.with_footprint_mb(footprint_mb)
    }
}

fn rows(data: [(u32, f64, f64, bool); 5]) -> [WeakRow; 5] {
    data.map(|(ctas_paper, footprint_mb, minsns, mcm)| WeakRow {
        ctas_paper,
        footprint_mb,
        minsns,
        mcm,
    })
}

/// Builds the six-benchmark weak-scaling suite of Table IV.
///
/// # Example
///
/// ```
/// use gsim_trace::{weak::weak_suite, MemScale};
///
/// let suite = weak_suite(MemScale::default());
/// assert_eq!(suite.len(), 6);
/// let bfs = &suite[0];
/// let small = bfs.workload_for_sms(8);
/// let big = bfs.workload_for_sms(128);
/// assert!(big.total_ctas() > 10 * small.total_ctas());
/// ```
pub fn weak_suite(scale: MemScale) -> Vec<WeakBenchmark> {
    vec![
        WeakBenchmark {
            abbr: "bfs",
            expected: ScalingClass::SubLinear,
            // Table IV (first-row footprint follows the ×2 progression).
            rows: rows([
                (128, 2.55, 30.0, false),
                (256, 5.1, 61.0, false),
                (512, 10.2, 128.0, true),
                (1024, 20.4, 257.0, true),
                (2046, 40.9, 549.0, true),
            ]),
            kind: WeakKind::Bfs,
            scale,
        },
        WeakBenchmark {
            abbr: "bs",
            expected: ScalingClass::SubLinear,
            rows: rows([
                (15_625, 40.0, 431.0, true),
                (31_250, 80.0, 862.0, true),
                (62_500, 160.0, 1_724.0, true),
                (125_000, 320.0, 3_448.0, false),
                (250_000, 640.0, 6_898.0, false),
            ]),
            kind: WeakKind::Bs,
            scale,
        },
        WeakBenchmark {
            abbr: "btree",
            expected: ScalingClass::Linear,
            rows: rows([
                (2_500, 4.3, 167.0, false),
                (5_000, 8.7, 335.0, false),
                (10_000, 17.4, 670.0, false),
                (20_000, 34.7, 1_341.0, false),
                (40_000, 69.4, 2_682.0, false),
            ]),
            kind: WeakKind::Btree,
            scale,
        },
        WeakBenchmark {
            abbr: "as",
            expected: ScalingClass::Linear,
            rows: rows([
                (2_048, 4.2, 13.5, false),
                (4_096, 8.7, 27.0, false),
                (8_192, 16.78, 54.0, true),
                (16_384, 33.6, 109.0, true),
                (32_768, 67.1, 218.0, true),
            ]),
            kind: WeakKind::As,
            scale,
        },
        WeakBenchmark {
            abbr: "bp",
            expected: ScalingClass::Linear,
            // First-row footprint follows the ×2 progression of the
            // published larger rows.
            rows: rows([
                (4_096, 9.4, 212.0, false),
                (8_192, 18.9, 424.0, true),
                (16_384, 37.7, 848.0, true),
                (32_768, 75.5, 1_696.0, true),
                (65_536, 151.0, 3_392.0, false),
            ]),
            kind: WeakKind::Bp,
            scale,
        },
        WeakBenchmark {
            abbr: "va",
            expected: ScalingClass::Linear,
            rows: rows([
                (1_024, 3.1, 5.8, false),
                (2_048, 6.3, 11.5, false),
                (4_096, 12.6, 23.0, true),
                (8_196, 25.2, 46.0, true),
                (16_384, 50.3, 92.0, true),
            ]),
            kind: WeakKind::Va,
            scale,
        },
    ]
}

/// Looks a weak benchmark up by abbreviation.
pub fn weak_benchmark(abbr: &str, scale: MemScale) -> Option<WeakBenchmark> {
    weak_suite(scale).into_iter().find(|b| b.abbr == abbr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_benchmarks_five_rows() {
        let suite = weak_suite(MemScale::default());
        assert_eq!(suite.len(), 6);
        for b in &suite {
            assert_eq!(b.rows.len(), 5);
            for w in b.rows.windows(2) {
                assert!(
                    w[1].footprint_mb > w[0].footprint_mb,
                    "{}: footprints must grow",
                    b.abbr
                );
            }
        }
    }

    #[test]
    fn work_scales_with_system_size() {
        for b in weak_suite(MemScale::default()) {
            let w8 = b.workload_for_sms(8).approx_warp_instrs() as f64;
            let w128 = b.workload_for_sms(128).approx_warp_instrs() as f64;
            let ratio = w128 / w8;
            assert!(
                (8.0..32.0).contains(&ratio),
                "{}: 128-SM input should be ~16x the 8-SM input, got {ratio:.1}x",
                b.abbr
            );
        }
    }

    #[test]
    fn bfs_small_kernels_stay_fixed() {
        let bfs = weak_benchmark("bfs", MemScale::default()).unwrap();
        for row in 0..5 {
            let wl = bfs.workload_for_row(row);
            assert_eq!(wl.kernels().first().unwrap().n_ctas(), 16);
            assert_eq!(wl.kernels().last().unwrap().n_ctas(), 16);
        }
    }

    #[test]
    fn mcm_rows_match_table_4() {
        let suite = weak_suite(MemScale::default());
        let get = |a: &str| suite.iter().find(|b| b.abbr == a).unwrap();
        assert_eq!(get("bfs").mcm_rows(), Some([2, 3, 4]));
        assert_eq!(get("bs").mcm_rows(), Some([0, 1, 2]));
        assert_eq!(get("btree").mcm_rows(), None, "excluded as in the paper");
        assert_eq!(get("as").mcm_rows(), Some([2, 3, 4]));
        assert_eq!(get("bp").mcm_rows(), Some([1, 2, 3]));
        assert_eq!(get("va").mcm_rows(), Some([2, 3, 4]));
    }

    #[test]
    fn chiplet_workloads_scale_with_chiplet_count() {
        let va = weak_benchmark("va", MemScale::default()).unwrap();
        let w4 = va.workload_for_chiplets(4);
        let w16 = va.workload_for_chiplets(16);
        assert_eq!(w16.total_ctas(), 4 * w4.total_ctas());
        assert!((w16.footprint_mb_paper() / w4.footprint_mb_paper() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn btree_hot_set_grows_with_input() {
        // The camping pressure must stay constant under weak scaling.
        let bt = weak_benchmark("btree", MemScale::default()).unwrap();
        let hot = |row: usize| {
            bt.workload_for_row(row).kernels()[0]
                .spec()
                .hot()
                .unwrap()
                .hot_lines
        };
        assert_eq!(hot(4), 16 * hot(0));
    }

    #[test]
    #[should_panic(expected = "no weak-scaling input")]
    fn rejects_unknown_system_size() {
        let va = weak_benchmark("va", MemScale::default()).unwrap();
        let _ = va.workload_for_sms(48);
    }
}
