//! The warp-level instruction alphabet.

/// Which path through the memory hierarchy an access takes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Normal cached global access: L1 → NoC → LLC → DRAM.
    Global,
    /// L1-bypassing access (atomics / frontier updates): NoC → LLC → DRAM.
    /// These are what create slice camping on hot shared data.
    BypassL1,
}

/// One warp-level memory access.
///
/// `line_addr` is the address of the first 128 B line touched; a divergent
/// access (`txns > 1`) touches `txns` lines spaced `txn_stride_lines`
/// apart, modelling intra-warp memory divergence (each extra transaction is
/// another NoC/LLC/DRAM request for the same warp instruction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// First cache-line address touched.
    pub line_addr: u64,
    /// Number of 128 B transactions this warp instruction generates (1 for
    /// a fully coalesced access, up to 32 for fully divergent).
    pub txns: u8,
    /// Line distance between consecutive transactions.
    pub txn_stride_lines: u32,
    /// Memory space / bypass behaviour.
    pub space: MemSpace,
}

impl MemAccess {
    /// A fully coalesced one-line access.
    pub fn coalesced(line_addr: u64) -> Self {
        Self {
            line_addr,
            txns: 1,
            txn_stride_lines: 0,
            space: MemSpace::Global,
        }
    }

    /// Iterates over the line addresses of all transactions.
    pub fn lines(&self) -> impl Iterator<Item = u64> + '_ {
        (0..u64::from(self.txns))
            .map(move |i| self.line_addr + i * u64::from(self.txn_stride_lines))
    }
}

/// A warp-level operation, as issued by an SM scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` back-to-back arithmetic instructions; each issues in one cycle
    /// and never stalls the warp (pipelined ALUs, dependence latency hidden
    /// by the issue round-robin).
    Compute {
        /// Number of batched arithmetic instructions (≥ 1).
        n: u16,
    },
    /// A load: the warp blocks until all transactions return.
    Load(MemAccess),
    /// A store: fire-and-forget (GPU L1s are write-through, no-write-
    /// allocate), consumes NoC/LLC/DRAM bandwidth but does not block.
    Store(MemAccess),
    /// An atomic read-modify-write on shared data: blocks like a load and
    /// bypasses the L1, serialising at the owning LLC slice.
    Atomic(MemAccess),
}

impl Op {
    /// Number of warp instructions this op represents.
    pub fn warp_instrs(&self) -> u64 {
        match self {
            Op::Compute { n } => u64::from(*n),
            _ => 1,
        }
    }

    /// The memory access, if this op touches memory.
    pub fn mem(&self) -> Option<&MemAccess> {
        match self {
            Op::Compute { .. } => None,
            Op::Load(m) | Op::Store(m) | Op::Atomic(m) => Some(m),
        }
    }

    /// Whether the issuing warp must wait for the result.
    pub fn blocks_warp(&self) -> bool {
        matches!(self, Op::Load(_) | Op::Atomic(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalesced_access_is_one_txn() {
        let m = MemAccess::coalesced(10);
        assert_eq!(m.lines().collect::<Vec<_>>(), vec![10]);
    }

    #[test]
    fn divergent_access_spreads_lines() {
        let m = MemAccess {
            line_addr: 100,
            txns: 4,
            txn_stride_lines: 33,
            space: MemSpace::Global,
        };
        assert_eq!(m.lines().collect::<Vec<_>>(), vec![100, 133, 166, 199]);
    }

    #[test]
    fn op_accounting() {
        assert_eq!(Op::Compute { n: 7 }.warp_instrs(), 7);
        let load = Op::Load(MemAccess::coalesced(1));
        assert_eq!(load.warp_instrs(), 1);
        assert!(load.blocks_warp());
        assert!(!Op::Store(MemAccess::coalesced(1)).blocks_warp());
        assert!(Op::Atomic(MemAccess::coalesced(1)).blocks_warp());
        assert!(Op::Compute { n: 1 }.mem().is_none());
    }
}
