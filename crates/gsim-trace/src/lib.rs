//! Synthetic GPU workload substrate for scale-model simulation.
//!
//! The paper evaluates its methodology on 21 CUDA benchmarks (Rodinia,
//! Polybench, Parboil, CUDA SDK, MLPerf — Tables II and IV) traced through
//! Accel-Sim. Neither the traces nor the GPUs that produced them are
//! available here, so this crate recreates each benchmark as a
//! *deterministic synthetic workload* parameterised by the characteristics
//! the paper publishes — memory footprint, CTA grid sizes, instruction
//! volume — plus an access-pattern family chosen to match the described
//! behaviour (sharp miss-rate cliff for dct/fwt, gradual curve for bfs,
//! flat curve for pf, near-zero reuse for ht, compute-bound gemm, …).
//!
//! The important property is that the three scaling regimes the paper
//! identifies *emerge* from first principles when these workloads run on
//! the timing simulator:
//!
//! * **linear** — compute-bound kernels, or footprints far exceeding every
//!   LLC capacity of interest;
//! * **super-linear** — reused working sets that fit the target's LLC but
//!   not the scale models' (the miss-rate-curve *cliff*);
//! * **sub-linear** — kernel sequences with too few CTAs to fill large
//!   GPUs (workload–architecture imbalance), or hot shared lines that camp
//!   on LLC slices.
//!
//! # Structure
//!
//! A [`Workload`] is a sequence of [`Kernel`]s (kernels are separated by
//! implicit barriers, as on a real GPU stream). Each kernel launches a grid
//! of CTAs; each warp of each CTA yields a deterministic instruction stream
//! ([`WarpStream`]) of [`Op`]s generated from the kernel's [`PatternSpec`].
//!
//! ```
//! use gsim_trace::{PatternKind, PatternSpec, Kernel, Workload, WarpStream};
//!
//! let spec = PatternSpec::new(PatternKind::GlobalSweep { passes: 4 }, 1 << 16)
//!     .mem_ops_per_warp(64)
//!     .compute_per_mem(2.0);
//! let kernel = Kernel::new("sweep", 96, 256, spec);
//! let wl = Workload::new("demo", 42, vec![kernel]);
//! let mut stream = wl.kernels()[0].warp_stream(&wl, 0, 0, 0);
//! assert!(stream.next_op().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dag;
mod kernel;
mod model;
mod op;
mod pattern;
mod scale;
pub mod suite;
pub mod tracefile;
pub mod weak;

pub use dag::{DagParams, DagWorkload};
pub use kernel::{Kernel, Workload};
pub use model::WorkloadModel;
pub use op::{MemAccess, MemSpace, Op};
pub use pattern::{PatternKind, PatternSpec, SharedHotSpec, SpecStream, StreamCtx, WarpStream};
pub use scale::MemScale;
pub use tracefile::{
    semantic_hash_of, write_trace, write_trace_v1, KernelMeta, TraceLimits, TraceReadError,
    TraceReader, TraceStats, TraceStream, TracedWarp, TracedWorkload,
};

/// Threads per warp, fixed at 32 throughout the paper (Table III).
pub const THREADS_PER_WARP: u32 = 32;
