//! Access-pattern families and the deterministic warp-stream generator.

use gsim_rng::Rng64;

use crate::op::{MemAccess, MemSpace, Op};

/// Line-address offset of the shared "hot" region (atomically updated
/// frontier counters, tree roots, …), kept disjoint from workload data.
pub const HOT_REGION_BASE: u64 = 1 << 40;

/// A stream of warp-level operations.
///
/// Streams are created per (kernel, CTA, warp) and are deterministic: the
/// same workload seed always yields the same trace, which keeps simulator
/// runs reproducible and lets the functional miss-rate-curve collector see
/// exactly the traffic the timing simulator sees.
pub trait WarpStream {
    /// Produces the next operation, or `None` when the warp has retired.
    fn next_op(&mut self) -> Option<Op>;
}

/// How a warp walks memory. See the crate docs for which benchmark families
/// map to which kind.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternKind {
    /// The grid collectively sweeps the whole footprint once per pass, each
    /// warp walking an interleaved stride-`total_warps` slice. Reuse exists
    /// only *across* passes, with an LLC-level reuse distance of about the
    /// footprint — a flat miss-rate curve below the footprint and a sharp
    /// cliff once the LLC holds it (dct, fwt, pf, at, …).
    GlobalSweep {
        /// Number of passes over the footprint.
        passes: u32,
    },
    /// Single cold pass over the footprint: (almost) zero data reuse, as
    /// the paper describes for ht.
    Streaming,
    /// Random accesses over a mixture of nested working-set levels, giving
    /// a gradually declining miss-rate curve (bfs, sr, gr).
    WorkingSetMix {
        /// `(weight, fraction_of_footprint)` levels; weights are
        /// normalised internally. Fractions above 1.0 model streaming
        /// regions larger than the nominal footprint that never fit any
        /// cache of interest.
        levels: Vec<(f64, f64)>,
    },
    /// Warp-private tiles re-swept `reuses` times before moving on —
    /// blocked/tiling kernels whose reuse is captured close to the SM
    /// (gemm, 2mm).
    Tiled {
        /// Lines per tile.
        tile_lines: u64,
        /// Times each tile is re-walked.
        reuses: u32,
    },
    /// Uniformly random (pointer-chasing) accesses over the footprint
    /// (btree traversals).
    PointerChase,
}

/// Shared hot-data behaviour layered on a base pattern: with probability
/// `prob` a memory op becomes an L1-bypassing atomic on one of `hot_lines`
/// lines shared by *all* CTAs. Because a line lives in exactly one LLC
/// slice, a small hot set makes ever more SMs camp on the same few slices
/// as the system scales — the paper's second sub-linear mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SharedHotSpec {
    /// Probability that a memory op targets the hot region.
    pub prob: f64,
    /// Number of distinct hot lines.
    pub hot_lines: u64,
}

/// Full description of a kernel's memory behaviour.
///
/// Built with a fluent builder:
///
/// ```
/// use gsim_trace::{PatternKind, PatternSpec};
///
/// let spec = PatternSpec::new(PatternKind::PointerChase, 1 << 20)
///     .mem_ops_per_warp(128)
///     .compute_per_mem(1.5)
///     .divergence(4);
/// assert_eq!(spec.footprint_lines(), 1 << 20);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PatternSpec {
    kind: PatternKind,
    footprint_lines: u64,
    mem_ops_per_warp: u32,
    compute_per_mem: f64,
    write_frac: f64,
    divergence: u8,
    shared_hot: Option<SharedHotSpec>,
    tail_compute: u32,
}

impl PatternSpec {
    /// Creates a spec for `kind` over a footprint of `footprint_lines`
    /// 128 B lines, with defaults: 64 memory ops per warp (where the kind
    /// does not derive its own count), 2 compute instructions per memory
    /// op, no stores, fully coalesced, no shared hot set.
    ///
    /// # Panics
    ///
    /// Panics if `footprint_lines` is zero.
    pub fn new(kind: PatternKind, footprint_lines: u64) -> Self {
        assert!(footprint_lines > 0, "footprint must be non-empty");
        Self {
            kind,
            footprint_lines,
            mem_ops_per_warp: 64,
            compute_per_mem: 2.0,
            write_frac: 0.0,
            divergence: 1,
            shared_hot: None,
            tail_compute: 0,
        }
    }

    /// Sets the number of memory ops per warp (ignored by
    /// [`PatternKind::GlobalSweep`] and [`PatternKind::Streaming`], which
    /// derive it from footprint coverage).
    pub fn mem_ops_per_warp(mut self, n: u32) -> Self {
        self.mem_ops_per_warp = n;
        self
    }

    /// Sets the arithmetic intensity: compute instructions interleaved per
    /// memory op (fractional values are realised exactly on average via an
    /// accumulator).
    pub fn compute_per_mem(mut self, r: f64) -> Self {
        assert!(r >= 0.0, "compute/mem ratio must be non-negative");
        self.compute_per_mem = r;
        self
    }

    /// Sets the fraction of memory ops that are stores.
    pub fn write_frac(mut self, f: f64) -> Self {
        assert!((0.0..=1.0).contains(&f), "write fraction must be in [0,1]");
        self.write_frac = f;
        self
    }

    /// Sets the number of 128 B transactions per memory op (memory
    /// divergence), clamped to `1..=32`.
    pub fn divergence(mut self, txns: u8) -> Self {
        self.divergence = txns.clamp(1, 32);
        self
    }

    /// Layers a shared hot set (see [`SharedHotSpec`]) on the base pattern.
    pub fn shared_hot(mut self, prob: f64, hot_lines: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "probability must be in [0,1]");
        assert!(hot_lines > 0, "hot set must be non-empty");
        self.shared_hot = Some(SharedHotSpec { prob, hot_lines });
        self
    }

    /// Adds a compute-only epilogue of `n` instructions per warp (used for
    /// workloads whose instruction volume dwarfs their memory traffic).
    pub fn tail_compute(mut self, n: u32) -> Self {
        self.tail_compute = n;
        self
    }

    /// The pattern kind.
    pub fn kind(&self) -> &PatternKind {
        &self.kind
    }

    /// Footprint in 128 B lines.
    pub fn footprint_lines(&self) -> u64 {
        self.footprint_lines
    }

    /// Compute instructions per memory op.
    pub fn compute_ratio(&self) -> f64 {
        self.compute_per_mem
    }

    /// Fraction of memory ops that are stores.
    pub fn write_fraction(&self) -> f64 {
        self.write_frac
    }

    /// The shared hot set, if configured.
    pub fn hot(&self) -> Option<SharedHotSpec> {
        self.shared_hot
    }

    /// Memory ops a warp with context `ctx` will execute.
    pub fn mem_ops_for(&self, ctx: &StreamCtx) -> u64 {
        let lines_per_warp = self.footprint_lines.div_ceil(ctx.total_warps.max(1)).max(1);
        match &self.kind {
            PatternKind::GlobalSweep { passes } => lines_per_warp * u64::from(*passes),
            PatternKind::Streaming => lines_per_warp,
            _ => u64::from(self.mem_ops_per_warp),
        }
    }

    /// Approximate warp instructions a warp with context `ctx` executes
    /// (memory ops + interleaved compute + epilogue).
    pub fn warp_instrs_for(&self, ctx: &StreamCtx) -> u64 {
        let m = self.mem_ops_for(ctx);
        m + (m as f64 * self.compute_per_mem) as u64 + u64::from(self.tail_compute)
    }
}

/// Placement of a warp within its kernel's grid, used to partition work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamCtx {
    /// Index of this warp across the whole grid (CTA-major).
    pub global_warp: u64,
    /// Total warps in the grid.
    pub total_warps: u64,
    /// Per-stream RNG seed (derived from workload seed, kernel, CTA, warp).
    pub seed: u64,
}

enum Phase {
    ComputeBeforeMem,
    Mem,
    Tail,
    Done,
}

/// The deterministic generator realising a [`PatternSpec`] for one warp.
pub struct SpecStream {
    spec: PatternSpec,
    ctx: StreamCtx,
    rng: Rng64,
    mem_ops_total: u64,
    mem_op_idx: u64,
    lines_per_warp: u64,
    compute_acc: f64,
    phase: Phase,
    tail_left: u32,
    /// Normalised cumulative level weights for `WorkingSetMix`.
    mix_cdf: Vec<(f64, u64)>,
}

impl std::fmt::Debug for SpecStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpecStream")
            .field("spec", &self.spec)
            .field("ctx", &self.ctx)
            .field("mem_op_idx", &self.mem_op_idx)
            .field("mem_ops_total", &self.mem_ops_total)
            .finish()
    }
}

impl SpecStream {
    /// Creates the stream for one warp.
    pub fn new(spec: PatternSpec, ctx: StreamCtx) -> Self {
        let mem_ops_total = spec.mem_ops_for(&ctx);
        let lines_per_warp = spec.footprint_lines.div_ceil(ctx.total_warps.max(1)).max(1);
        let mix_cdf = if let PatternKind::WorkingSetMix { levels } = &spec.kind {
            let total: f64 = levels.iter().map(|(w, _)| w).sum();
            let mut acc = 0.0;
            levels
                .iter()
                .map(|&(w, frac)| {
                    acc += w / total;
                    let lines = ((spec.footprint_lines as f64 * frac) as u64).max(1);
                    (acc, lines)
                })
                .collect()
        } else {
            Vec::new()
        };
        let tail_left = spec.tail_compute;
        Self {
            rng: Rng64::seed_from_u64(ctx.seed),
            spec,
            ctx,
            mem_ops_total,
            mem_op_idx: 0,
            lines_per_warp,
            compute_acc: 0.0,
            phase: Phase::ComputeBeforeMem,
            tail_left,
            mix_cdf,
        }
    }

    fn base_line(&mut self) -> u64 {
        let i = self.mem_op_idx;
        let g = self.ctx.global_warp;
        let total = self.ctx.total_warps.max(1);
        let fp = self.spec.footprint_lines;
        match &self.spec.kind {
            PatternKind::GlobalSweep { .. } => {
                let k = i % self.lines_per_warp;
                (g + k * total) % fp
            }
            PatternKind::Streaming => g + i * total,
            PatternKind::WorkingSetMix { .. } => {
                let u = self.rng.next_f64();
                let lines = self
                    .mix_cdf
                    .iter()
                    .find(|&&(cdf, _)| u <= cdf)
                    .map(|&(_, l)| l)
                    .unwrap_or(fp);
                self.rng.gen_range(0, lines)
            }
            PatternKind::Tiled { tile_lines, reuses } => {
                let tile_span = tile_lines * u64::from(*reuses).max(1);
                let tile = i / tile_span;
                let within = (i % tile_span) % tile_lines;
                let region_start = (g * self.lines_per_warp) % fp;
                (region_start + (tile * tile_lines + within) % self.lines_per_warp) % fp
            }
            PatternKind::PointerChase => self.rng.gen_range(0, fp),
        }
    }

    fn mem_op(&mut self) -> Op {
        if let Some(hot) = self.spec.shared_hot {
            if self.rng.gen_bool(hot.prob) {
                // Log-uniform rank selection: the hottest line draws
                // ~ln2/ln(H) of the atomic traffic, the next octave half
                // of that, and so on — so the owning LLC slices saturate
                // one octave at a time as the system scales, giving the
                // smooth sub-linear camping decay of real shared data
                // (tree roots, frontier counters) instead of a sharp
                // saturation threshold.
                let u = self.rng.next_f64();
                let rank = (hot.hot_lines as f64).powf(u) as u64;
                let line = HOT_REGION_BASE + (rank - 1).min(hot.hot_lines - 1);
                return Op::Atomic(MemAccess {
                    line_addr: line,
                    txns: 1,
                    txn_stride_lines: 0,
                    space: MemSpace::BypassL1,
                });
            }
        }
        let line = self.base_line();
        let txns = if self.spec.divergence > 1 {
            // Divergence varies per op between half and full configured width.
            self.rng.gen_range_inclusive(
                u64::from((self.spec.divergence / 2).max(1)),
                u64::from(self.spec.divergence),
            ) as u8
        } else {
            1
        };
        let stride = if txns > 1 {
            self.rng.gen_range_inclusive(1, 97) as u32
        } else {
            0
        };
        let access = MemAccess {
            line_addr: line,
            txns,
            txn_stride_lines: stride,
            space: MemSpace::Global,
        };
        if self.spec.write_frac > 0.0 && self.rng.gen_bool(self.spec.write_frac) {
            Op::Store(access)
        } else {
            Op::Load(access)
        }
    }
}

impl WarpStream for SpecStream {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            match self.phase {
                Phase::ComputeBeforeMem => {
                    if self.mem_op_idx >= self.mem_ops_total {
                        self.phase = Phase::Tail;
                        continue;
                    }
                    self.phase = Phase::Mem;
                    self.compute_acc += self.spec.compute_per_mem;
                    let n = self.compute_acc as u16;
                    if n > 0 {
                        self.compute_acc -= f64::from(n);
                        return Some(Op::Compute { n });
                    }
                }
                Phase::Mem => {
                    let op = self.mem_op();
                    self.mem_op_idx += 1;
                    self.phase = Phase::ComputeBeforeMem;
                    return Some(op);
                }
                Phase::Tail => {
                    if self.tail_left == 0 {
                        self.phase = Phase::Done;
                        return None;
                    }
                    let n = self.tail_left.min(u32::from(u16::MAX)) as u16;
                    self.tail_left -= u32::from(n);
                    return Some(Op::Compute { n });
                }
                Phase::Done => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(g: u64, total: u64) -> StreamCtx {
        StreamCtx {
            global_warp: g,
            total_warps: total,
            seed: 12345 + g,
        }
    }

    fn drain(spec: &PatternSpec, c: StreamCtx) -> Vec<Op> {
        let mut s = SpecStream::new(spec.clone(), c);
        std::iter::from_fn(move || s.next_op()).collect()
    }

    #[test]
    fn stream_is_deterministic() {
        let spec = PatternSpec::new(PatternKind::PointerChase, 4096).mem_ops_per_warp(50);
        let a = drain(&spec, ctx(3, 16));
        let b = drain(&spec, ctx(3, 16));
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn global_sweep_covers_footprint_exactly() {
        // 4 warps over 16 lines, 1 pass: union of accesses = all lines.
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 16).compute_per_mem(0.0);
        let mut seen = std::collections::HashSet::new();
        for g in 0..4 {
            for op in drain(&spec, ctx(g, 4)) {
                if let Some(m) = op.mem() {
                    seen.extend(m.lines());
                }
            }
        }
        assert_eq!(seen.len(), 16);
        assert_eq!(*seen.iter().max().unwrap(), 15);
    }

    #[test]
    fn global_sweep_passes_multiply_ops() {
        let c = ctx(0, 4);
        let one = PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 16);
        let four = PatternSpec::new(PatternKind::GlobalSweep { passes: 4 }, 16);
        assert_eq!(one.mem_ops_for(&c), 4);
        assert_eq!(four.mem_ops_for(&c), 16);
    }

    #[test]
    fn streaming_never_revisits_lines() {
        let spec = PatternSpec::new(PatternKind::Streaming, 64).compute_per_mem(0.0);
        let mut seen = std::collections::HashSet::new();
        for g in 0..4 {
            for op in drain(&spec, ctx(g, 4)) {
                if let Some(m) = op.mem() {
                    assert!(seen.insert(m.line_addr), "line revisited");
                }
            }
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn compute_ratio_is_realised_on_average() {
        let spec = PatternSpec::new(PatternKind::PointerChase, 1024)
            .mem_ops_per_warp(1000)
            .compute_per_mem(1.5);
        let ops = drain(&spec, ctx(0, 1));
        let compute: u64 = ops
            .iter()
            .filter_map(|o| match o {
                Op::Compute { n } => Some(u64::from(*n)),
                _ => None,
            })
            .sum();
        let mem = ops.iter().filter(|o| o.mem().is_some()).count() as u64;
        assert_eq!(mem, 1000);
        assert_eq!(compute, 1500, "accumulator realises 1.5 exactly per 1000");
    }

    #[test]
    fn working_set_mix_respects_levels() {
        let spec = PatternSpec::new(
            PatternKind::WorkingSetMix {
                levels: vec![(0.7, 0.01), (0.3, 1.0)],
            },
            10_000,
        )
        .mem_ops_per_warp(2000)
        .compute_per_mem(0.0);
        let ops = drain(&spec, ctx(0, 1));
        let small = ops
            .iter()
            .filter_map(Op::mem)
            .filter(|m| m.line_addr < 100)
            .count();
        let frac = small as f64 / 2000.0;
        assert!(
            (0.6..0.85).contains(&frac),
            "~70% of accesses in the hot level, got {frac}"
        );
    }

    #[test]
    fn tiled_pattern_reuses_within_tile() {
        let spec = PatternSpec::new(
            PatternKind::Tiled {
                tile_lines: 4,
                reuses: 3,
            },
            1 << 20,
        )
        .mem_ops_per_warp(24)
        .compute_per_mem(0.0);
        let ops = drain(&spec, ctx(0, 1));
        let lines: Vec<u64> = ops
            .iter()
            .filter_map(|o| o.mem().map(|m| m.line_addr))
            .collect();
        // First 12 ops walk tile 0 three times.
        assert_eq!(&lines[0..4], &lines[4..8]);
        assert_eq!(&lines[0..4], &lines[8..12]);
        // Next 12 walk a different tile.
        assert_ne!(&lines[0..4], &lines[12..16]);
    }

    #[test]
    fn shared_hot_emits_atomics_in_hot_region() {
        let spec = PatternSpec::new(PatternKind::PointerChase, 1024)
            .mem_ops_per_warp(500)
            .shared_hot(0.3, 8);
        let ops = drain(&spec, ctx(0, 1));
        let atomics: Vec<&MemAccess> = ops
            .iter()
            .filter_map(|o| match o {
                Op::Atomic(m) => Some(m),
                _ => None,
            })
            .collect();
        let frac = atomics.len() as f64 / 500.0;
        assert!((0.2..0.4).contains(&frac), "atomic fraction {frac}");
        for m in atomics {
            assert!(m.line_addr >= HOT_REGION_BASE);
            assert!(m.line_addr < HOT_REGION_BASE + 8);
            assert_eq!(m.space, MemSpace::BypassL1);
        }
    }

    #[test]
    fn write_frac_produces_stores() {
        let spec = PatternSpec::new(PatternKind::PointerChase, 1024)
            .mem_ops_per_warp(500)
            .write_frac(0.25);
        let ops = drain(&spec, ctx(0, 1));
        let stores = ops.iter().filter(|o| matches!(o, Op::Store(_))).count();
        let frac = stores as f64 / 500.0;
        assert!((0.15..0.35).contains(&frac), "store fraction {frac}");
    }

    #[test]
    fn divergence_widens_accesses() {
        let spec = PatternSpec::new(PatternKind::PointerChase, 1024)
            .mem_ops_per_warp(100)
            .divergence(8);
        let ops = drain(&spec, ctx(0, 1));
        let avg_txns: f64 = ops
            .iter()
            .filter_map(Op::mem)
            .map(|m| f64::from(m.txns))
            .sum::<f64>()
            / 100.0;
        assert!(avg_txns > 4.0, "average transactions {avg_txns}");
    }

    #[test]
    fn tail_compute_appends_epilogue() {
        let spec = PatternSpec::new(PatternKind::Streaming, 4)
            .compute_per_mem(0.0)
            .tail_compute(100_000);
        let ops = drain(&spec, ctx(0, 4));
        let total: u64 = ops.iter().map(Op::warp_instrs).sum();
        assert_eq!(total, 1 + 100_000);
        assert!(matches!(ops.last(), Some(Op::Compute { .. })));
    }
}
