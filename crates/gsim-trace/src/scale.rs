//! The memory-miniature scale factor.

use std::fmt;

/// Uniform down-scaling of all *capacities* (workload footprints, L1 and
/// LLC sizes) by a common divisor.
///
/// The paper runs benchmarks with up to 1.4 GB footprints for billions of
/// instructions on server farms; to make a full reproduction run on one
/// machine in minutes, this workspace shrinks every capacity by the same
/// factor (default 8) while keeping all *rates* (bandwidths, clock,
/// instruction mix) untouched. Because the prediction methodology operates
/// on intensive quantities — IPC, MPKI, the memory-stall fraction — and on
/// capacity *ratios* (does the working set fit the LLC at this scale?),
/// this rescaling preserves every qualitative conclusion; DESIGN.md §5
/// documents the substitution.
///
/// All tables and figures are still reported in paper units: use
/// [`MemScale::to_model_lines`] when building workloads/configs and
/// [`MemScale::to_paper_bytes`] when labelling output.
///
/// # Example
///
/// ```
/// use gsim_trace::MemScale;
///
/// let s = MemScale::default(); // divisor 8
/// let lines = s.mb_to_model_lines(33.0); // dct's 33 MB footprint
/// assert_eq!(lines, 33_792);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemScale {
    divisor: u32,
}

impl Default for MemScale {
    /// The divisor used throughout the reproduction: 8.
    fn default() -> Self {
        Self { divisor: 8 }
    }
}

impl MemScale {
    /// Creates a scale with an explicit divisor (1 = full size).
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn new(divisor: u32) -> Self {
        assert!(divisor > 0, "divisor must be positive");
        Self { divisor }
    }

    /// Full-size (divisor 1) scale, for small unit-test workloads.
    pub fn full() -> Self {
        Self { divisor: 1 }
    }

    /// The divisor.
    pub fn divisor(&self) -> u32 {
        self.divisor
    }

    /// Converts a paper-units byte capacity to model-units bytes.
    pub fn to_model_bytes(&self, paper_bytes: u64) -> u64 {
        (paper_bytes / u64::from(self.divisor)).max(1)
    }

    /// Converts a model-units byte capacity back to paper-units bytes.
    pub fn to_paper_bytes(&self, model_bytes: u64) -> u64 {
        model_bytes * u64::from(self.divisor)
    }

    /// Converts a paper-units byte capacity to model-units 128 B lines.
    pub fn to_model_lines(&self, paper_bytes: u64) -> u64 {
        (self.to_model_bytes(paper_bytes) / 128).max(1)
    }

    /// Converts a paper-units capacity in MB to model-units lines.
    pub fn mb_to_model_lines(&self, paper_mb: f64) -> u64 {
        assert!(paper_mb > 0.0, "capacity must be positive");
        self.to_model_lines((paper_mb * 1024.0 * 1024.0) as u64)
    }
}

impl fmt::Display for MemScale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "1/{} memory miniature", self.divisor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_divisor_is_eight() {
        assert_eq!(MemScale::default().divisor(), 8);
    }

    #[test]
    fn round_trips_bytes() {
        let s = MemScale::new(8);
        assert_eq!(s.to_model_bytes(34 * 1024 * 1024), 34 * 1024 * 1024 / 8);
        assert_eq!(s.to_paper_bytes(s.to_model_bytes(4096)), 4096);
    }

    #[test]
    fn full_scale_is_identity() {
        let s = MemScale::full();
        assert_eq!(s.to_model_bytes(1000), 1000);
        assert_eq!(s.to_model_lines(128 * 10), 10);
    }

    #[test]
    fn mb_conversion_matches_paper_numbers() {
        let s = MemScale::new(8);
        // dct: 33 MB -> 33 * 1024 * 1024 / 8 / 128 lines.
        assert_eq!(s.mb_to_model_lines(33.0), 33 * 1024 * 1024 / 8 / 128);
    }

    #[test]
    fn never_scales_to_zero() {
        let s = MemScale::new(1000);
        assert_eq!(s.to_model_bytes(10), 1);
        assert_eq!(s.to_model_lines(10), 1);
    }

    #[test]
    #[should_panic(expected = "divisor must be positive")]
    fn rejects_zero_divisor() {
        let _ = MemScale::new(0);
    }
}
