//! The workload interface the timing simulator consumes.
//!
//! Both synthetic workloads ([`Workload`]) and recorded trace files
//! ([`TracedWorkload`](crate::tracefile::TracedWorkload)) implement
//! [`WorkloadModel`], so the simulator runs either — the same split as
//! Accel-Sim's execution-driven vs trace-driven front-ends.

use crate::kernel::Workload;
use crate::pattern::{SpecStream, WarpStream};

/// A source of GPU work: an ordered sequence of kernels, each a grid of
/// CTAs whose warps yield deterministic instruction streams.
pub trait WorkloadModel {
    /// The per-warp stream type.
    type Stream: WarpStream;

    /// Display name.
    fn name(&self) -> &str;

    /// Number of kernels, executed in order with a barrier in between.
    fn n_kernels(&self) -> usize;

    /// `(n_ctas, threads_per_cta)` of kernel `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is out of range.
    fn grid(&self, kernel: usize) -> (u32, u32);

    /// Creates the instruction stream of one warp.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of range.
    fn warp_stream(&self, kernel: usize, cta: u32, warp: u32) -> Self::Stream;

    /// Expected total warp instructions (used for the sustained-IPC
    /// measurement window).
    fn approx_warp_instrs(&self) -> u64;

    /// Warps per CTA of kernel `kernel` (threads rounded up to warps).
    fn warps_per_cta(&self, kernel: usize) -> u32 {
        self.grid(kernel).1.div_ceil(32)
    }

    /// Display name of kernel `kernel` (recorded in trace files; never
    /// affects simulation results or content identity).
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is out of range.
    fn kernel_name(&self, kernel: usize) -> String {
        let _ = self.grid(kernel);
        format!("k{kernel}")
    }
}

impl WorkloadModel for Workload {
    type Stream = SpecStream;

    fn name(&self) -> &str {
        Workload::name(self)
    }

    fn n_kernels(&self) -> usize {
        self.kernels().len()
    }

    fn grid(&self, kernel: usize) -> (u32, u32) {
        let k = &self.kernels()[kernel];
        (k.n_ctas(), k.threads_per_cta())
    }

    fn warp_stream(&self, kernel: usize, cta: u32, warp: u32) -> SpecStream {
        self.kernels()[kernel].warp_stream(self, kernel, cta, warp)
    }

    fn approx_warp_instrs(&self) -> u64 {
        Workload::approx_warp_instrs(self)
    }

    fn kernel_name(&self, kernel: usize) -> String {
        self.kernels()[kernel].name().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::pattern::{PatternKind, PatternSpec};

    #[test]
    fn workload_implements_the_model() {
        let spec = PatternSpec::new(PatternKind::Streaming, 256).compute_per_mem(1.0);
        let wl = Workload::new("m", 1, vec![Kernel::new("k", 4, 100, spec)]);
        assert_eq!(WorkloadModel::name(&wl), "m");
        assert_eq!(wl.n_kernels(), 1);
        assert_eq!(wl.grid(0), (4, 100));
        assert_eq!(WorkloadModel::warps_per_cta(&wl, 0), 4);
        let mut s = WorkloadModel::warp_stream(&wl, 0, 0, 0);
        assert!(s.next_op().is_some());
    }
}
