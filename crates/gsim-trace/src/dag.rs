//! Kernel-dependency DAG workloads.
//!
//! A plain [`Workload`] is a totally ordered kernel sequence with an
//! implicit barrier between kernels. Multi-GPU and multi-tenant schedulers
//! need something weaker: a *partial* order in which independent kernels
//! may run concurrently on different devices. [`DagWorkload`] wraps a
//! [`Workload`] with an explicit dependency DAG over its kernels, encoded
//! so that topological legality holds by construction: kernel `i` may only
//! depend on kernels with index `< i`, which makes the kernel order of the
//! underlying workload one valid topological order and rules out cycles
//! without any graph search.
//!
//! [`DagWorkload::generate`] builds deterministic random DAG workloads from
//! a seed — grids, footprints, access patterns, and edges all derive from
//! one [`Rng64`] stream, so the same seed always yields the same workload.

use gsim_rng::Rng64;

use crate::kernel::{Kernel, Workload};
use crate::pattern::{PatternKind, PatternSpec};

/// Parameters for [`DagWorkload::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct DagParams {
    /// Number of kernels in the DAG.
    pub n_kernels: u32,
    /// Maximum predecessors drawn per kernel (actual fan-in may be lower
    /// after deduplication, and is additionally capped by the kernel's
    /// index).
    pub max_fanin: u32,
    /// Probability that each candidate predecessor edge is taken.
    pub edge_prob: f64,
    /// Smallest CTA grid a kernel may launch.
    pub min_ctas: u32,
    /// Largest CTA grid a kernel may launch.
    pub max_ctas: u32,
    /// Threads per CTA for every kernel.
    pub threads_per_cta: u32,
    /// Smallest per-kernel footprint in 128 B lines.
    pub min_footprint_lines: u64,
    /// Largest per-kernel footprint in 128 B lines.
    pub max_footprint_lines: u64,
}

impl Default for DagParams {
    fn default() -> Self {
        Self {
            n_kernels: 8,
            max_fanin: 2,
            edge_prob: 0.6,
            min_ctas: 16,
            max_ctas: 96,
            threads_per_cta: 256,
            min_footprint_lines: 1 << 12,
            max_footprint_lines: 1 << 15,
        }
    }
}

/// A workload whose kernels form a dependency DAG instead of a chain.
///
/// `deps[i]` lists the kernels that must complete before kernel `i` may
/// start; every entry is strictly less than `i`, so the underlying
/// workload's kernel order is always one legal topological order.
#[derive(Debug, Clone, PartialEq)]
pub struct DagWorkload {
    workload: Workload,
    deps: Vec<Vec<u32>>,
}

impl DagWorkload {
    /// Wraps `workload` with an explicit dependency DAG.
    ///
    /// # Panics
    ///
    /// Panics if `deps.len()` differs from the kernel count, or if any
    /// `deps[i]` is not sorted, contains duplicates, or references a kernel
    /// with index `>= i`.
    pub fn new(workload: Workload, deps: Vec<Vec<u32>>) -> Self {
        assert_eq!(
            deps.len(),
            workload.kernels().len(),
            "one dependency list per kernel"
        );
        for (i, d) in deps.iter().enumerate() {
            for (j, &p) in d.iter().enumerate() {
                assert!(
                    (p as usize) < i,
                    "kernel {i} depends on kernel {p}, which does not precede it"
                );
                if j > 0 {
                    assert!(d[j - 1] < p, "deps of kernel {i} must be sorted and unique");
                }
            }
        }
        Self { workload, deps }
    }

    /// Wraps `workload` as a linear chain: kernel `i` depends on `i - 1`,
    /// reproducing the implicit-barrier semantics of a plain workload.
    pub fn chain(workload: Workload) -> Self {
        let deps = (0..workload.kernels().len())
            .map(|i| if i == 0 { vec![] } else { vec![i as u32 - 1] })
            .collect();
        Self::new(workload, deps)
    }

    /// Generates a deterministic random DAG workload from `seed`.
    ///
    /// All structure — per-kernel grids, footprints, access-pattern
    /// families, arithmetic intensity, store fractions, and dependency
    /// edges — derives from a single seeded RNG stream, so equal
    /// `(name, seed, params)` always produce equal workloads.
    ///
    /// # Panics
    ///
    /// Panics if `params` is malformed (zero kernels, empty ranges,
    /// probability outside `[0, 1]`, or threads per CTA outside
    /// `1..=1024`).
    pub fn generate(name: impl Into<String>, seed: u64, params: &DagParams) -> Self {
        assert!(params.n_kernels > 0, "DAG needs at least one kernel");
        assert!(
            (0.0..=1.0).contains(&params.edge_prob),
            "edge probability must be in [0,1]"
        );
        assert!(
            params.min_ctas >= 1 && params.min_ctas <= params.max_ctas,
            "CTA range must be non-empty"
        );
        assert!(
            params.min_footprint_lines >= 1
                && params.min_footprint_lines <= params.max_footprint_lines,
            "footprint range must be non-empty"
        );
        assert!(
            (1..=1024).contains(&params.threads_per_cta),
            "threads per CTA must be in 1..=1024"
        );
        let name = name.into();
        let mut rng = Rng64::seed_from_u64(seed ^ 0xDA61_DA61_DA61_DA61);
        let mut kernels = Vec::with_capacity(params.n_kernels as usize);
        let mut deps = Vec::with_capacity(params.n_kernels as usize);
        for i in 0..params.n_kernels {
            let footprint =
                rng.gen_range_inclusive(params.min_footprint_lines, params.max_footprint_lines);
            let kind = match rng.gen_range(0, 4) {
                0 => PatternKind::GlobalSweep {
                    passes: rng.gen_range_inclusive(1, 4) as u32,
                },
                1 => PatternKind::Streaming,
                2 => PatternKind::Tiled {
                    tile_lines: rng.gen_range_inclusive(4, 32),
                    reuses: rng.gen_range_inclusive(2, 6) as u32,
                },
                _ => PatternKind::PointerChase,
            };
            let spec = PatternSpec::new(kind, footprint)
                .mem_ops_per_warp(rng.gen_range_inclusive(32, 128) as u32)
                .compute_per_mem(0.5 + rng.next_f64() * 3.5)
                .write_frac(rng.gen_range(0, 4) as f64 * 0.1);
            let ctas =
                rng.gen_range_inclusive(u64::from(params.min_ctas), u64::from(params.max_ctas));
            kernels.push(Kernel::new(
                format!("{name}.k{i}"),
                ctas as u32,
                params.threads_per_cta,
                spec,
            ));
            let mut d: Vec<u32> = Vec::new();
            for _ in 0..params.max_fanin.min(i) {
                if rng.gen_bool(params.edge_prob) {
                    d.push(rng.gen_range(0, u64::from(i)) as u32);
                }
            }
            d.sort_unstable();
            d.dedup();
            deps.push(d);
        }
        Self::new(Workload::new(name, seed, kernels), deps)
    }

    /// The underlying kernel sequence (one valid topological order).
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Number of kernels in the DAG.
    pub fn n_kernels(&self) -> u32 {
        self.workload.kernels().len() as u32
    }

    /// Kernels that must complete before kernel `k` may start.
    pub fn deps_of(&self, k: u32) -> &[u32] {
        &self.deps[k as usize]
    }

    /// All dependency lists, indexed by kernel.
    pub fn deps(&self) -> &[Vec<u32>] {
        &self.deps
    }

    /// Total dependency edges in the DAG.
    pub fn edge_count(&self) -> usize {
        self.deps.iter().map(Vec::len).sum()
    }

    /// Whether `order` is a legal topological execution order: a
    /// permutation of all kernels in which every kernel appears after all
    /// of its dependencies.
    pub fn is_topological(&self, order: &[u32]) -> bool {
        let n = self.deps.len();
        if order.len() != n {
            return false;
        }
        let mut pos = vec![usize::MAX; n];
        for (at, &k) in order.iter().enumerate() {
            let Some(slot) = pos.get_mut(k as usize) else {
                return false;
            };
            if *slot != usize::MAX {
                return false;
            }
            *slot = at;
        }
        self.deps
            .iter()
            .enumerate()
            .all(|(i, d)| d.iter().all(|&p| pos[p as usize] < pos[i]))
    }

    /// Kernels whose dependencies are all satisfied but which are not yet
    /// done, given a per-kernel completion mask.
    pub fn ready(&self, done: &[bool]) -> Vec<u32> {
        assert_eq!(done.len(), self.deps.len(), "one done flag per kernel");
        (0..self.deps.len() as u32)
            .filter(|&k| {
                !done[k as usize] && self.deps[k as usize].iter().all(|&p| done[p as usize])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_deps_are_topologically_legal() {
        let dag = DagWorkload::generate("t", 42, &DagParams::default());
        for (i, d) in dag.deps().iter().enumerate() {
            for &p in d {
                assert!((p as usize) < i, "edge {p} -> {i} violates index order");
            }
        }
        let identity: Vec<u32> = (0..dag.n_kernels()).collect();
        assert!(dag.is_topological(&identity));
    }

    #[test]
    fn reversed_order_is_illegal_when_edges_exist() {
        // High edge probability so the DAG is guaranteed non-trivial.
        let params = DagParams {
            edge_prob: 1.0,
            ..DagParams::default()
        };
        let dag = DagWorkload::generate("t", 7, &params);
        assert!(dag.edge_count() > 0);
        let reversed: Vec<u32> = (0..dag.n_kernels()).rev().collect();
        assert!(!dag.is_topological(&reversed));
        // Non-permutations are rejected too.
        assert!(!dag.is_topological(&[0, 0, 1]));
        assert!(!dag.is_topological(&[0]));
    }

    #[test]
    fn generation_is_deterministic_from_seed() {
        let p = DagParams::default();
        let a = DagWorkload::generate("t", 1234, &p);
        let b = DagWorkload::generate("t", 1234, &p);
        assert_eq!(a, b);
        let c = DagWorkload::generate("t", 1235, &p);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn chain_reproduces_barrier_semantics() {
        let dag = DagWorkload::generate("t", 9, &DagParams::default());
        let chain = DagWorkload::chain(dag.workload().clone());
        for (i, d) in chain.deps().iter().enumerate() {
            if i == 0 {
                assert!(d.is_empty());
            } else {
                assert_eq!(d, &[i as u32 - 1]);
            }
        }
    }

    #[test]
    fn ready_respects_dependencies() {
        let wl = DagWorkload::generate("t", 3, &DagParams::default())
            .workload()
            .clone();
        // 0 and 1 are roots; 2 needs 0; 3 needs 1 and 2.
        let dag = DagWorkload::new(wl.clone(), {
            let mut d = vec![vec![], vec![], vec![0], vec![1, 2]];
            d.extend((4..wl.kernels().len()).map(|_| vec![]));
            d
        });
        let n = wl.kernels().len();
        let mut done = vec![false; n];
        let ready = dag.ready(&done);
        assert!(ready.contains(&0) && ready.contains(&1));
        assert!(!ready.contains(&2) && !ready.contains(&3));
        done[0] = true;
        done[1] = true;
        let ready = dag.ready(&done);
        assert!(ready.contains(&2) && !ready.contains(&3));
        done[2] = true;
        assert!(dag.ready(&done).contains(&3));
    }

    #[test]
    #[should_panic(expected = "does not precede")]
    fn rejects_forward_dependency() {
        let wl = DagWorkload::generate("t", 5, &DagParams::default())
            .workload()
            .clone();
        let mut deps: Vec<Vec<u32>> = (0..wl.kernels().len()).map(|_| vec![]).collect();
        deps[1] = vec![2];
        let _ = DagWorkload::new(wl, deps);
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn rejects_duplicate_dependency() {
        let wl = DagWorkload::generate("t", 5, &DagParams::default())
            .workload()
            .clone();
        let mut deps: Vec<Vec<u32>> = (0..wl.kernels().len()).map(|_| vec![]).collect();
        deps[2] = vec![1, 1];
        let _ = DagWorkload::new(wl, deps);
    }

    /// Randomized soak: many seeds and parameter shapes, checking legality
    /// and determinism invariants on every generated DAG.
    #[test]
    #[cfg_attr(
        not(feature = "ext-tests"),
        ignore = "enable with --features ext-tests"
    )]
    fn randomized_dag_soak() {
        let mut rng = Rng64::seed_from_u64(0xDA6_50AC);
        for case in 0..200 {
            let params = DagParams {
                n_kernels: rng.gen_range_inclusive(1, 24) as u32,
                max_fanin: rng.gen_range(0, 5) as u32,
                edge_prob: rng.next_f64(),
                min_ctas: 1,
                max_ctas: rng.gen_range_inclusive(1, 64) as u32,
                threads_per_cta: rng.gen_range_inclusive(32, 512) as u32,
                min_footprint_lines: 64,
                max_footprint_lines: rng.gen_range_inclusive(64, 1 << 16),
            };
            let seed = rng.next_u64();
            let dag = DagWorkload::generate(format!("soak{case}"), seed, &params);
            assert_eq!(
                dag,
                DagWorkload::generate(format!("soak{case}"), seed, &params),
                "case {case}: generation must be deterministic"
            );
            assert_eq!(dag.n_kernels(), params.n_kernels);
            let identity: Vec<u32> = (0..dag.n_kernels()).collect();
            assert!(dag.is_topological(&identity), "case {case}");
            for (i, d) in dag.deps().iter().enumerate() {
                assert!(d.len() <= params.max_fanin as usize, "case {case}");
                for (j, &p) in d.iter().enumerate() {
                    assert!((p as usize) < i, "case {case}");
                    if j > 0 {
                        assert!(d[j - 1] < p, "case {case}");
                    }
                }
            }
            // Draining the ready set in order visits every kernel exactly
            // once and yields a topological order.
            let mut done = vec![false; dag.n_kernels() as usize];
            let mut order = Vec::new();
            while order.len() < done.len() {
                let ready = dag.ready(&done);
                assert!(!ready.is_empty(), "case {case}: DAG stalled");
                for k in ready {
                    done[k as usize] = true;
                    order.push(k);
                }
            }
            assert!(dag.is_topological(&order), "case {case}");
        }
    }
}
