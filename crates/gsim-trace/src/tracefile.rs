//! Binary trace files: record a workload's instruction streams once,
//! replay them anywhere.
//!
//! Accel-Sim, the simulator this workspace stands in for, is
//! *trace-driven*: workloads are captured as instruction traces and the
//! timing model replays them. This module provides the same workflow:
//! [`write_trace`] serialises every warp stream of a [`Workload`] into a
//! compact binary format, and [`TracedWorkload`] replays a recorded file
//! through the simulator via [`WorkloadModel`]. Traces are deterministic
//! and self-contained, so they can be shared without the generator.
//!
//! # Format (version 1)
//!
//! All integers are LEB128 varints unless noted.
//!
//! ```text
//! magic "GSTR"            4 bytes
//! version                 u8 (= 1)
//! name                    varint length + UTF-8 bytes
//! n_kernels               varint
//! per kernel:
//!   name                  varint length + UTF-8
//!   n_ctas                varint
//!   threads_per_cta       varint
//!   per warp (CTA-major): varint op-count, then ops
//! ```
//!
//! Ops are tagged with one byte: bits 1..0 = kind (0 compute, 1 load,
//! 2 store, 3 atomic); bit 2 = L1 bypass. Compute carries a varint batch
//! size; memory ops carry `txns` (u8), a varint transaction stride, and
//! the line address as a zigzag varint delta against the previous memory
//! address of the same warp — sequential streams compress to ~2 bytes
//! per access.

use std::io::{self, Read, Write};

use crate::kernel::Workload;
use crate::model::WorkloadModel;
use crate::op::{MemAccess, MemSpace, Op};
use crate::pattern::WarpStream;

const MAGIC: &[u8; 4] = b"GSTR";
const VERSION: u8 = 1;

/// A read cursor over a decoded trace buffer (the std-only stand-in for
/// the `bytes` crate this module once used).
struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn get_u8(&mut self) -> io::Result<u8> {
        let b = self
            .buf
            .get(self.pos)
            .copied()
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated byte"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, len: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < len {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated slice",
            ));
        }
        let s = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }
}

fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

fn get_varint(buf: &mut ByteReader<'_>) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = buf
            .get_u8()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated varint"))?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint overflow",
            ));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn put_string(buf: &mut Vec<u8>, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn get_string(buf: &mut ByteReader<'_>) -> io::Result<String> {
    let len = get_varint(buf)? as usize;
    let bytes = buf
        .take(len)
        .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated string"))?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "invalid UTF-8"))
}

fn encode_ops(buf: &mut Vec<u8>, ops: &[Op]) {
    put_varint(buf, ops.len() as u64);
    let mut last_addr: i64 = 0;
    for op in ops {
        match op {
            Op::Compute { n } => {
                buf.push(0);
                put_varint(buf, u64::from(*n));
            }
            Op::Load(m) | Op::Store(m) | Op::Atomic(m) => {
                let kind: u8 = match op {
                    Op::Load(_) => 1,
                    Op::Store(_) => 2,
                    _ => 3,
                };
                let bypass = if m.space == MemSpace::BypassL1 { 4 } else { 0 };
                buf.push(kind | bypass);
                buf.push(m.txns);
                put_varint(buf, u64::from(m.txn_stride_lines));
                put_varint(buf, zigzag(m.line_addr as i64 - last_addr));
                last_addr = m.line_addr as i64;
            }
        }
    }
}

fn decode_ops(buf: &mut ByteReader<'_>) -> io::Result<Vec<Op>> {
    let n = get_varint(buf)? as usize;
    let mut ops = Vec::with_capacity(n.min(1 << 20));
    let mut last_addr: i64 = 0;
    for _ in 0..n {
        let tag = buf
            .get_u8()
            .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated op"))?;
        match tag & 0x03 {
            0 => {
                let n = get_varint(buf)?;
                let n = u16::try_from(n)
                    .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "batch too big"))?;
                ops.push(Op::Compute { n });
            }
            kind => {
                let txns = buf
                    .get_u8()
                    .map_err(|_| io::Error::new(io::ErrorKind::UnexpectedEof, "truncated op"))?;
                let stride = get_varint(buf)? as u32;
                let delta = unzigzag(get_varint(buf)?);
                let addr = last_addr + delta;
                if addr < 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        "negative address",
                    ));
                }
                last_addr = addr;
                let access = MemAccess {
                    line_addr: addr as u64,
                    txns,
                    txn_stride_lines: stride,
                    space: if tag & 4 != 0 {
                        MemSpace::BypassL1
                    } else {
                        MemSpace::Global
                    },
                };
                ops.push(match kind {
                    1 => Op::Load(access),
                    2 => Op::Store(access),
                    _ => Op::Atomic(access),
                });
            }
        }
    }
    Ok(ops)
}

/// Serialises every warp stream of `wl` into `out`.
///
/// # Errors
///
/// Returns any I/O error from `out`. A `&mut Vec<u8>` or file can be
/// passed (generic writers are taken by value per the standard-library
/// convention; pass `&mut w` to keep ownership).
pub fn write_trace<W: Write>(wl: &Workload, mut out: W) -> io::Result<u64> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    put_string(&mut buf, WorkloadModel::name(wl));
    put_varint(&mut buf, wl.kernels().len() as u64);
    for (kidx, kernel) in wl.kernels().iter().enumerate() {
        put_string(&mut buf, kernel.name());
        put_varint(&mut buf, u64::from(kernel.n_ctas()));
        put_varint(&mut buf, u64::from(kernel.threads_per_cta()));
        for cta in 0..kernel.n_ctas() {
            for warp in 0..kernel.warps_per_cta() {
                let mut stream = kernel.warp_stream(wl, kidx, cta, warp);
                let mut ops = Vec::new();
                while let Some(op) = stream.next_op() {
                    ops.push(op);
                }
                encode_ops(&mut buf, &ops);
            }
        }
    }
    let bytes = buf.len() as u64;
    out.write_all(&buf)?;
    Ok(bytes)
}

#[derive(Debug, Clone)]
struct TracedKernel {
    name: String,
    n_ctas: u32,
    threads_per_cta: u32,
    /// Ops per warp, CTA-major.
    warps: Vec<Vec<Op>>,
}

/// A workload read back from a trace file; replayable through the
/// simulator via [`WorkloadModel`].
#[derive(Debug, Clone)]
pub struct TracedWorkload {
    name: String,
    kernels: Vec<TracedKernel>,
    total_warp_instrs: u64,
}

impl TracedWorkload {
    /// Reads a version-1 trace.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or a malformed/unsupported file.
    pub fn read<R: Read>(mut input: R) -> io::Result<Self> {
        let mut raw = Vec::new();
        input.read_to_end(&mut raw)?;
        let mut buf = ByteReader::new(&raw);
        if buf.remaining() < 5 || buf.take(4)? != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a GSTR trace",
            ));
        }
        let version = buf.get_u8()?;
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let name = get_string(&mut buf)?;
        let n_kernels = get_varint(&mut buf)? as usize;
        let mut kernels = Vec::with_capacity(n_kernels);
        let mut total = 0u64;
        for _ in 0..n_kernels {
            let kname = get_string(&mut buf)?;
            let n_ctas = get_varint(&mut buf)? as u32;
            let threads_per_cta = get_varint(&mut buf)? as u32;
            let warps_per_cta = threads_per_cta.div_ceil(32);
            let n_warps = (n_ctas as usize) * (warps_per_cta as usize);
            let mut warps = Vec::with_capacity(n_warps);
            for _ in 0..n_warps {
                let ops = decode_ops(&mut buf)?;
                total += ops.iter().map(Op::warp_instrs).sum::<u64>();
                warps.push(ops);
            }
            kernels.push(TracedKernel {
                name: kname,
                n_ctas,
                threads_per_cta,
                warps,
            });
        }
        Ok(Self {
            name,
            kernels,
            total_warp_instrs: total,
        })
    }

    /// Name of kernel `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn kernel_name(&self, kernel: usize) -> &str {
        &self.kernels[kernel].name
    }

    /// Total warp instructions recorded.
    pub fn total_warp_instrs(&self) -> u64 {
        self.total_warp_instrs
    }

    /// Keeps only the first `ceil(n_ctas * fraction)` CTAs of each kernel
    /// — the kernel-sampling acceleration of prior work (Baddouh et al.'s
    /// principal kernel analysis family \[8\]): the sampled CTAs' streams
    /// are bit-identical to the full run's, only the grid shrinks. The
    /// per-kernel scale factors `n_full / n_sampled` are returned for
    /// extrapolation.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn with_cta_fraction(&self, fraction: f64) -> (TracedWorkload, Vec<f64>) {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        let mut factors = Vec::with_capacity(self.kernels.len());
        let mut total = 0u64;
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                let keep = ((f64::from(k.n_ctas) * fraction).ceil() as u32).clamp(1, k.n_ctas);
                factors.push(f64::from(k.n_ctas) / f64::from(keep));
                let wpc = k.threads_per_cta.div_ceil(32) as usize;
                let warps: Vec<Vec<Op>> = k.warps[..keep as usize * wpc].to_vec();
                total += warps
                    .iter()
                    .flat_map(|ops| ops.iter().map(Op::warp_instrs))
                    .sum::<u64>();
                TracedKernel {
                    name: k.name.clone(),
                    n_ctas: keep,
                    threads_per_cta: k.threads_per_cta,
                    warps,
                }
            })
            .collect();
        (
            TracedWorkload {
                name: format!("{}@{:.3}", self.name, fraction),
                kernels,
                total_warp_instrs: total,
            },
            factors,
        )
    }
}

/// Replay stream over a recorded warp (an owned op cursor).
#[derive(Debug, Clone)]
pub struct TraceStream {
    ops: std::vec::IntoIter<Op>,
}

impl WarpStream for TraceStream {
    fn next_op(&mut self) -> Option<Op> {
        self.ops.next()
    }
}

impl WorkloadModel for TracedWorkload {
    type Stream = TraceStream;

    fn name(&self) -> &str {
        &self.name
    }

    fn n_kernels(&self) -> usize {
        self.kernels.len()
    }

    fn grid(&self, kernel: usize) -> (u32, u32) {
        let k = &self.kernels[kernel];
        (k.n_ctas, k.threads_per_cta)
    }

    fn warp_stream(&self, kernel: usize, cta: u32, warp: u32) -> TraceStream {
        let k = &self.kernels[kernel];
        let wpc = k.threads_per_cta.div_ceil(32);
        assert!(
            cta < k.n_ctas && warp < wpc,
            "warp coordinates out of range"
        );
        let idx = (cta * wpc + warp) as usize;
        TraceStream {
            ops: k.warps[idx].clone().into_iter(),
        }
    }

    fn approx_warp_instrs(&self) -> u64 {
        self.total_warp_instrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Kernel;
    use crate::pattern::{PatternKind, PatternSpec};

    fn demo() -> Workload {
        let sweep = PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 512)
            .compute_per_mem(1.5)
            .write_frac(0.2);
        let chase = PatternSpec::new(PatternKind::PointerChase, 4096)
            .mem_ops_per_warp(20)
            .divergence(4)
            .shared_hot(0.1, 8);
        Workload::new(
            "demo",
            77,
            vec![
                Kernel::new("sweep", 12, 256, sweep),
                Kernel::new("chase", 6, 128, chase),
            ],
        )
    }

    fn roundtrip(wl: &Workload) -> TracedWorkload {
        let mut bytes = Vec::new();
        write_trace(wl, &mut bytes).expect("in-memory write");
        TracedWorkload::read(&bytes[..]).expect("well-formed trace")
    }

    #[test]
    fn roundtrip_preserves_every_op() {
        let wl = demo();
        let traced = roundtrip(&wl);
        assert_eq!(WorkloadModel::name(&traced), "demo");
        assert_eq!(traced.n_kernels(), 2);
        assert_eq!(traced.grid(0), (12, 256));
        assert_eq!(traced.kernel_name(1), "chase");
        for kidx in 0..wl.kernels().len() {
            let k = &wl.kernels()[kidx];
            for cta in 0..k.n_ctas() {
                for warp in 0..k.warps_per_cta() {
                    let mut orig = k.warp_stream(&wl, kidx, cta, warp);
                    let mut replay = traced.warp_stream(kidx, cta, warp);
                    loop {
                        let (a, b) = (orig.next_op(), replay.next_op());
                        assert_eq!(a, b, "kernel {kidx} cta {cta} warp {warp}");
                        if a.is_none() {
                            break;
                        }
                    }
                }
            }
        }
        assert_eq!(traced.total_warp_instrs(), wl.approx_warp_instrs());
    }

    #[test]
    fn sequential_traces_compress_well() {
        let sweep =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 4096).compute_per_mem(1.0);
        let wl = Workload::new("seq", 1, vec![Kernel::new("k", 16, 256, sweep)]);
        let mut bytes = Vec::new();
        write_trace(&wl, &mut bytes).expect("write");
        let ops = wl.approx_warp_instrs();
        let per_op = bytes.len() as f64 / ops as f64;
        assert!(
            per_op < 5.0,
            "expected compact encoding, got {per_op:.1} B/op"
        );
    }

    #[test]
    fn rejects_garbage_and_truncation() {
        assert!(TracedWorkload::read(&b"NOPE"[..]).is_err());
        let wl = demo();
        let mut bytes = Vec::new();
        write_trace(&wl, &mut bytes).expect("write");
        let cut = &bytes[..bytes.len() / 2];
        assert!(TracedWorkload::read(cut).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(TracedWorkload::read(&wrong_version[..]).is_err());
    }

    #[test]
    fn cta_sampling_keeps_prefix_streams_identical() {
        let wl = demo();
        let traced = roundtrip(&wl);
        let (half, factors) = traced.with_cta_fraction(0.5);
        assert_eq!(half.grid(0).0, 6); // 12 CTAs -> 6
        assert_eq!(half.grid(1).0, 3);
        assert_eq!(factors, vec![2.0, 2.0]);
        let mut a = traced.warp_stream(0, 2, 1);
        let mut b = half.warp_stream(0, 2, 1);
        loop {
            let (x, y) = (a.next_op(), b.next_op());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
        assert!(half.total_warp_instrs() < traced.total_warp_instrs());
    }

    #[test]
    fn varint_and_zigzag_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), 1 << 50] {
            let mut b = Vec::new();
            put_varint(&mut b, v);
            let mut r = ByteReader::new(&b);
            assert_eq!(get_varint(&mut r).unwrap(), v);
        }
        for v in [0i64, 1, -1, 63, -64, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }
}
