//! Trace serialisation for both format versions.
//!
//! Writers are generic over [`WorkloadModel`], so both synthetic
//! workloads and already-decoded [`TracedWorkload`](super::TracedWorkload)s
//! can be recorded — the latter is how the trace store transcodes v1
//! uploads to v2 at ingest. Output is streamed: the v2 writer holds at
//! most one chunk in memory, the v1 writer at most one warp.

use std::io::{self, Write};

use crate::model::WorkloadModel;
use crate::op::Op;
use crate::pattern::WarpStream;

use super::wire::{self, MAGIC, VERSION_1, VERSION_2};
use super::{FRAME_CHUNK, FRAME_END, FRAME_HEADER};

/// Soft chunk-payload size the v2 writer flushes at. A chunk can exceed
/// this by at most one warp's encoding, and readers default to a 16 MiB
/// hard cap, so anything this writer produces round-trips.
pub(super) const CHUNK_TARGET_BYTES: usize = 64 * 1024;

/// Writes one framed record: kind, varint payload length, payload, and an
/// FNV-1a 64 checksum of the payload (little-endian). Returns bytes
/// written.
fn write_frame<W: Write>(out: &mut W, kind: u8, payload: &[u8]) -> io::Result<u64> {
    let mut head = Vec::with_capacity(12);
    head.push(kind);
    wire::put_varint(&mut head, payload.len() as u64);
    out.write_all(&head)?;
    out.write_all(payload)?;
    out.write_all(&wire::fnv1a(payload).to_le_bytes())?;
    Ok(head.len() as u64 + payload.len() as u64 + 8)
}

fn flush_chunk<W: Write>(
    out: &mut W,
    kernel: usize,
    first_warp: u64,
    n_warps: u64,
    warp_bytes: &[u8],
) -> io::Result<u64> {
    let mut payload = Vec::with_capacity(warp_bytes.len() + 16);
    wire::put_varint(&mut payload, kernel as u64);
    wire::put_varint(&mut payload, first_warp);
    wire::put_varint(&mut payload, n_warps);
    payload.extend_from_slice(warp_bytes);
    write_frame(out, FRAME_CHUNK, &payload)
}

/// Collects one warp's full op stream into `ops` (cleared first).
fn collect_warp<M: WorkloadModel>(wl: &M, kernel: usize, cta: u32, warp: u32, ops: &mut Vec<Op>) {
    ops.clear();
    let mut stream = wl.warp_stream(kernel, cta, warp);
    while let Some(op) = stream.next_op() {
        ops.push(op);
    }
}

/// Serialises every warp stream of `wl` in the current (version 2) format.
///
/// Returns the number of bytes written.
///
/// # Errors
///
/// Returns any I/O error from `out`. A `&mut Vec<u8>` or file can be
/// passed (generic writers are taken by value per the standard-library
/// convention; pass `&mut w` to keep ownership).
pub fn write_trace<M: WorkloadModel, W: Write>(wl: &M, mut out: W) -> io::Result<u64> {
    let mut bytes = 5u64;
    out.write_all(MAGIC)?;
    out.write_all(&[VERSION_2])?;

    let mut header = Vec::new();
    wire::put_string(&mut header, wl.name());
    wire::put_varint(&mut header, wl.n_kernels() as u64);
    for k in 0..wl.n_kernels() {
        let (n_ctas, threads_per_cta) = wl.grid(k);
        wire::put_string(&mut header, &wl.kernel_name(k));
        wire::put_varint(&mut header, u64::from(n_ctas));
        wire::put_varint(&mut header, u64::from(threads_per_cta));
    }
    bytes += write_frame(&mut out, FRAME_HEADER, &header)?;

    let (mut total_warps, mut total_ops, mut total_instrs) = (0u64, 0u64, 0u64);
    let mut ops = Vec::new();
    let mut warp_bytes = Vec::new();
    for k in 0..wl.n_kernels() {
        let (n_ctas, _) = wl.grid(k);
        let wpc = wl.warps_per_cta(k);
        let mut first_warp = 0u64;
        let mut n_warps = 0u64;
        warp_bytes.clear();
        for cta in 0..n_ctas {
            for warp in 0..wpc {
                collect_warp(wl, k, cta, warp, &mut ops);
                wire::encode_ops(&mut warp_bytes, &ops);
                n_warps += 1;
                total_warps += 1;
                total_ops += ops.len() as u64;
                total_instrs += ops.iter().map(Op::warp_instrs).sum::<u64>();
                if warp_bytes.len() >= CHUNK_TARGET_BYTES {
                    bytes += flush_chunk(&mut out, k, first_warp, n_warps, &warp_bytes)?;
                    first_warp += n_warps;
                    n_warps = 0;
                    warp_bytes.clear();
                }
            }
        }
        if n_warps > 0 {
            bytes += flush_chunk(&mut out, k, first_warp, n_warps, &warp_bytes)?;
        }
    }

    let mut end = Vec::new();
    wire::put_varint(&mut end, total_warps);
    wire::put_varint(&mut end, total_ops);
    wire::put_varint(&mut end, total_instrs);
    bytes += write_frame(&mut out, FRAME_END, &end)?;
    Ok(bytes)
}

/// Serialises `wl` in the legacy version-1 format (unframed, no
/// checksums). Kept for compatibility testing and for producing fixtures
/// older tools can read.
///
/// # Errors
///
/// Returns any I/O error from `out`.
pub fn write_trace_v1<M: WorkloadModel, W: Write>(wl: &M, mut out: W) -> io::Result<u64> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION_1);
    wire::put_string(&mut buf, wl.name());
    wire::put_varint(&mut buf, wl.n_kernels() as u64);
    let mut bytes = 0u64;
    let mut ops = Vec::new();
    for k in 0..wl.n_kernels() {
        let (n_ctas, threads_per_cta) = wl.grid(k);
        wire::put_string(&mut buf, &wl.kernel_name(k));
        wire::put_varint(&mut buf, u64::from(n_ctas));
        wire::put_varint(&mut buf, u64::from(threads_per_cta));
        for cta in 0..n_ctas {
            for warp in 0..wl.warps_per_cta(k) {
                collect_warp(wl, k, cta, warp, &mut ops);
                wire::encode_ops(&mut buf, &ops);
                // Flush per warp so memory stays bounded by one warp, not
                // the whole trace.
                bytes += buf.len() as u64;
                out.write_all(&buf)?;
                buf.clear();
            }
        }
    }
    bytes += buf.len() as u64;
    out.write_all(&buf)?;
    Ok(bytes)
}
