//! Streaming, bounded-memory trace decoding.
//!
//! [`TraceReader`] iterates a trace file warp by warp without ever holding
//! the whole file in memory: the v1 body is decoded incrementally off a
//! small rolling buffer, and v2 files are decoded one checksummed chunk at
//! a time. Peak buffer memory is therefore bounded by the chunk size (plus
//! one refill block), not the trace size — the property the multi-MB
//! bounded-memory test asserts via [`TraceStats::peak_buffer_bytes`].

use std::io::Read;

use crate::op::Op;

use super::wire::{self, ByteGet, FnvSink, SliceReader, MAGIC, VERSION_1, VERSION_2};
use super::{
    KernelMeta, TraceLimits, TraceReadError, TraceStats, TracedWarp, FRAME_CHUNK, FRAME_END,
    FRAME_HEADER,
};

/// Refill granularity of the rolling input buffer.
const FILL_BLOCK: usize = 64 * 1024;

/// A rolling-buffer byte source over any [`Read`], enforcing a total-size
/// limit and tracking peak buffer occupancy.
struct ByteSource<R: Read> {
    inner: R,
    buf: Vec<u8>,
    pos: usize,
    /// Total bytes fetched from `inner`.
    fetched: u64,
    max_bytes: u64,
    eof: bool,
    peak: usize,
}

impl<R: Read> ByteSource<R> {
    fn new(inner: R, max_bytes: u64) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            pos: 0,
            fetched: 0,
            max_bytes,
            eof: false,
            peak: 0,
        }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn fetch_block(&mut self) -> Result<usize, TraceReadError> {
        if self.eof {
            return Ok(0);
        }
        let start = self.buf.len();
        self.buf.resize(start + FILL_BLOCK, 0);
        let n = loop {
            match self.inner.read(&mut self.buf[start..]) {
                Ok(n) => break n,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.buf.truncate(start);
                    return Err(TraceReadError::Io(e));
                }
            }
        };
        self.buf.truncate(start + n);
        self.peak = self.peak.max(self.buf.len());
        if n == 0 {
            self.eof = true;
        }
        self.fetched += n as u64;
        if self.fetched > self.max_bytes {
            return Err(TraceReadError::TooLarge(format!(
                "trace exceeds max_file_bytes = {}",
                self.max_bytes
            )));
        }
        Ok(n)
    }

    /// Ensures at least `need` unread bytes are buffered, or EOF was hit.
    fn fill(&mut self, need: usize) -> Result<(), TraceReadError> {
        if self.remaining() >= need {
            return Ok(());
        }
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        while self.remaining() < need && !self.eof {
            self.fetch_block()?;
        }
        Ok(())
    }

    /// True when every buffered byte is consumed and the input is at EOF.
    fn at_eof(&mut self) -> Result<bool, TraceReadError> {
        self.fill(1)?;
        Ok(self.remaining() == 0)
    }
}

impl<R: Read> ByteGet for ByteSource<R> {
    fn get_u8(&mut self) -> Result<u8, TraceReadError> {
        self.fill(1)?;
        let b = self
            .buf
            .get(self.pos)
            .copied()
            .ok_or_else(|| TraceReadError::corrupt("unexpected end of trace"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take_into(&mut self, len: usize, out: &mut Vec<u8>) -> Result<(), TraceReadError> {
        out.clear();
        // Incremental copy: never preallocate `len` up front, so a hostile
        // length prefix on a tiny file cannot trigger a huge allocation.
        let mut left = len;
        while left > 0 {
            self.fill(left.min(FILL_BLOCK))?;
            let have = self.remaining().min(left);
            if have == 0 {
                return Err(TraceReadError::corrupt("unexpected end of trace"));
            }
            out.extend_from_slice(&self.buf[self.pos..self.pos + have]);
            self.pos += have;
            left -= have;
        }
        Ok(())
    }
}

/// Iterates a trace file warp by warp, in CTA-major kernel order, with
/// bounded memory. Handles both format versions.
///
/// After the final [`TraceReader::next_warp`] returns `Ok(None)`,
/// [`TraceReader::stats`] reports totals, the content-addressed
/// [semantic hash](super::semantic_hash_of), and peak buffer occupancy;
/// [`TraceReader::kernels`] is then complete for either version (v1
/// interleaves kernel headers with warp data, so metadata arrives as the
/// stream progresses; v2 declares it all up front).
pub struct TraceReader<R: Read> {
    src: ByteSource<R>,
    limits: TraceLimits,
    version: u8,
    name: String,
    n_kernels: usize,
    kernels: Vec<KernelMeta>,
    /// Next warp to yield: kernel index and CTA-major warp index within it.
    cursor_kernel: usize,
    cursor_warp: u64,
    /// Total warps of the kernel under the cursor (valid once its meta is
    /// known).
    kernel_warps: u64,
    declared_warps: u64,
    // v2 frame state: current chunk payload and decode position.
    chunk: Vec<u8>,
    chunk_pos: usize,
    chunk_warps_left: u64,
    peak_chunk: usize,
    // Accumulators.
    hash: FnvSink,
    total_warps: u64,
    total_ops: u64,
    total_warp_instrs: u64,
    stats: Option<TraceStats>,
}

impl<R: Read> TraceReader<R> {
    /// Opens a trace with default [`TraceLimits`].
    ///
    /// # Errors
    ///
    /// Fails fast on a wrong magic ([`TraceReadError::NotATrace`]), an
    /// unknown version ([`TraceReadError::UnsupportedVersion`]), or a
    /// corrupt/oversized preamble.
    pub fn new(input: R) -> Result<Self, TraceReadError> {
        Self::with_limits(input, TraceLimits::default())
    }

    /// Opens a trace with explicit limits.
    ///
    /// # Errors
    ///
    /// As [`TraceReader::new`].
    pub fn with_limits(input: R, limits: TraceLimits) -> Result<Self, TraceReadError> {
        // A preamble cut short means "this is not one of our files", but
        // I/O and limit errors keep their own class.
        fn eof_means_not_a_trace(e: TraceReadError) -> TraceReadError {
            match e {
                TraceReadError::Corrupt(_) => TraceReadError::NotATrace,
                other => other,
            }
        }
        let mut src = ByteSource::new(input, limits.max_file_bytes);
        let mut magic = [0u8; 4];
        for slot in &mut magic {
            *slot = src.get_u8().map_err(eof_means_not_a_trace)?;
        }
        if &magic != MAGIC {
            return Err(TraceReadError::NotATrace);
        }
        let version = src.get_u8().map_err(eof_means_not_a_trace)?;
        if version != VERSION_1 && version != VERSION_2 {
            return Err(TraceReadError::UnsupportedVersion(version));
        }
        let mut rd = Self {
            src,
            limits,
            version,
            name: String::new(),
            n_kernels: 0,
            kernels: Vec::new(),
            cursor_kernel: 0,
            cursor_warp: 0,
            kernel_warps: 0,
            declared_warps: 0,
            chunk: Vec::new(),
            chunk_pos: 0,
            chunk_warps_left: 0,
            peak_chunk: 0,
            hash: FnvSink::new(),
            total_warps: 0,
            total_ops: 0,
            total_warp_instrs: 0,
            stats: None,
        };
        match version {
            VERSION_1 => {
                rd.name = wire::get_string(&mut rd.src, &rd.limits)?;
                let n = wire::get_varint(&mut rd.src)?;
                rd.n_kernels = rd.check_n_kernels(n)?;
            }
            _ => rd.read_v2_header()?,
        }
        wire::put_varint(&mut rd.hash, rd.n_kernels as u64);
        Ok(rd)
    }

    fn check_n_kernels(&self, n: u64) -> Result<usize, TraceReadError> {
        if n > self.limits.max_kernels {
            return Err(TraceReadError::TooLarge(format!(
                "trace declares {n} kernels, limit is {}",
                self.limits.max_kernels
            )));
        }
        Ok(n as usize)
    }

    fn validate_meta(&mut self, meta: &KernelMeta) -> Result<u64, TraceReadError> {
        if meta.n_ctas == 0 {
            return Err(TraceReadError::corrupt("kernel declares zero CTAs"));
        }
        if meta.threads_per_cta == 0 || meta.threads_per_cta > 1024 {
            return Err(TraceReadError::corrupt(format!(
                "kernel declares {} threads per CTA (must be 1..=1024)",
                meta.threads_per_cta
            )));
        }
        let warps = u64::from(meta.n_ctas) * u64::from(meta.warps_per_cta());
        self.declared_warps += warps;
        if self.declared_warps > self.limits.max_warps {
            return Err(TraceReadError::TooLarge(format!(
                "trace declares more than {} warps",
                self.limits.max_warps
            )));
        }
        Ok(warps)
    }

    /// Reads one frame into `self.chunk`, verifying length and checksum.
    /// Returns the frame kind.
    fn read_frame(&mut self) -> Result<u8, TraceReadError> {
        let kind = self.src.get_u8()?;
        let len = wire::get_varint(&mut self.src)?;
        if len > self.limits.max_chunk_bytes {
            return Err(TraceReadError::TooLarge(format!(
                "frame payload of {len} bytes exceeds max_chunk_bytes = {}",
                self.limits.max_chunk_bytes
            )));
        }
        let mut payload = std::mem::take(&mut self.chunk);
        self.src.take_into(len as usize, &mut payload)?;
        let mut sum = [0u8; 8];
        for slot in &mut sum {
            *slot = self.src.get_u8()?;
        }
        if wire::fnv1a(&payload) != u64::from_le_bytes(sum) {
            return Err(TraceReadError::corrupt("frame checksum mismatch"));
        }
        self.peak_chunk = self.peak_chunk.max(payload.len());
        self.chunk = payload;
        self.chunk_pos = 0;
        Ok(kind)
    }

    fn read_v2_header(&mut self) -> Result<(), TraceReadError> {
        if self.read_frame()? != FRAME_HEADER {
            return Err(TraceReadError::corrupt("first frame is not a header"));
        }
        let chunk = std::mem::take(&mut self.chunk);
        let mut r = SliceReader::new(&chunk);
        self.name = wire::get_string(&mut r, &self.limits)?;
        let n = wire::get_varint(&mut r)?;
        self.n_kernels = self.check_n_kernels(n)?;
        for _ in 0..self.n_kernels {
            let name = wire::get_string(&mut r, &self.limits)?;
            let n_ctas = u32::try_from(wire::get_varint(&mut r)?)
                .map_err(|_| TraceReadError::corrupt("CTA count exceeds u32"))?;
            let threads_per_cta = u32::try_from(wire::get_varint(&mut r)?)
                .map_err(|_| TraceReadError::corrupt("thread count exceeds u32"))?;
            let meta = KernelMeta {
                name,
                n_ctas,
                threads_per_cta,
            };
            self.validate_meta(&meta)?;
            self.kernels.push(meta);
        }
        if r.remaining() != 0 {
            return Err(TraceReadError::corrupt("trailing bytes in header frame"));
        }
        self.chunk = chunk;
        Ok(())
    }

    /// Reads the v1 inline kernel header under the cursor.
    fn read_v1_kernel_meta(&mut self) -> Result<(), TraceReadError> {
        let name = wire::get_string(&mut self.src, &self.limits)?;
        let n_ctas = u32::try_from(wire::get_varint(&mut self.src)?)
            .map_err(|_| TraceReadError::corrupt("CTA count exceeds u32"))?;
        let threads_per_cta = u32::try_from(wire::get_varint(&mut self.src)?)
            .map_err(|_| TraceReadError::corrupt("thread count exceeds u32"))?;
        let meta = KernelMeta {
            name,
            n_ctas,
            threads_per_cta,
        };
        self.validate_meta(&meta)?;
        self.kernels.push(meta);
        Ok(())
    }

    /// Loads the next chunk frame and validates its position against the
    /// cursor: chunks must cover each kernel's warps contiguously,
    /// CTA-major, and never span kernels.
    fn load_chunk(&mut self) -> Result<(), TraceReadError> {
        if self.read_frame()? != FRAME_CHUNK {
            return Err(TraceReadError::corrupt("expected a warp-chunk frame"));
        }
        let chunk = std::mem::take(&mut self.chunk);
        let (kernel_idx, first_warp, n_warps, pos) = {
            let mut r = SliceReader::new(&chunk);
            let k = wire::get_varint(&mut r)?;
            let f = wire::get_varint(&mut r)?;
            let n = wire::get_varint(&mut r)?;
            (k, f, n, r.pos)
        };
        self.chunk = chunk;
        self.chunk_pos = pos;
        if kernel_idx != self.cursor_kernel as u64 || first_warp != self.cursor_warp {
            return Err(TraceReadError::corrupt(format!(
                "chunk out of order: covers kernel {kernel_idx} warp {first_warp}, \
                 expected kernel {} warp {}",
                self.cursor_kernel, self.cursor_warp
            )));
        }
        if n_warps == 0 || n_warps > self.kernel_warps - self.cursor_warp {
            return Err(TraceReadError::corrupt(format!(
                "chunk declares {n_warps} warps, kernel has {} left",
                self.kernel_warps - self.cursor_warp
            )));
        }
        self.chunk_warps_left = n_warps;
        Ok(())
    }

    /// Verifies the v2 end-of-trace frame against the accumulated totals.
    fn read_v2_end(&mut self) -> Result<(), TraceReadError> {
        if self.read_frame()? != FRAME_END {
            return Err(TraceReadError::corrupt("expected the end-of-trace frame"));
        }
        let chunk = std::mem::take(&mut self.chunk);
        let mut r = SliceReader::new(&chunk);
        let warps = wire::get_varint(&mut r)?;
        let ops = wire::get_varint(&mut r)?;
        let instrs = wire::get_varint(&mut r)?;
        let trailing = r.remaining();
        self.chunk = chunk;
        if trailing != 0 {
            return Err(TraceReadError::corrupt("trailing bytes in end frame"));
        }
        if warps != self.total_warps || ops != self.total_ops || instrs != self.total_warp_instrs {
            return Err(TraceReadError::corrupt(
                "end-frame totals disagree with trace body",
            ));
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), TraceReadError> {
        if self.version == VERSION_2 {
            self.read_v2_end()?;
        }
        if !self.src.at_eof()? {
            return Err(TraceReadError::corrupt("trailing bytes after trace"));
        }
        self.stats = Some(TraceStats {
            total_warps: self.total_warps,
            total_ops: self.total_ops,
            total_warp_instrs: self.total_warp_instrs,
            semantic_hash: self.hash.0,
            bytes_read: self.src.fetched,
            peak_buffer_bytes: self.src.peak + self.peak_chunk,
        });
        Ok(())
    }

    /// Yields the next warp, or `Ok(None)` once the trace is fully (and
    /// validly) consumed.
    ///
    /// # Errors
    ///
    /// Any corruption, truncation, or limit violation. The reader is not
    /// resumable after an error.
    pub fn next_warp(&mut self) -> Result<Option<TracedWarp>, TraceReadError> {
        if self.stats.is_some() {
            return Ok(None);
        }
        // Skip past (hypothetical) zero-warp kernels and detect the end.
        loop {
            if self.cursor_kernel == self.n_kernels {
                self.finish()?;
                return Ok(None);
            }
            if self.cursor_warp == 0 {
                // Entering a kernel: materialise (v1) or look up (v2) its
                // meta, fold it into the semantic hash.
                if self.kernels.len() == self.cursor_kernel {
                    debug_assert_eq!(self.version, VERSION_1);
                    self.read_v1_kernel_meta()?;
                }
                let meta = &self.kernels[self.cursor_kernel];
                self.kernel_warps = u64::from(meta.n_ctas) * u64::from(meta.warps_per_cta());
                let (ctas, threads) = (meta.n_ctas, meta.threads_per_cta);
                wire::put_varint(&mut self.hash, u64::from(ctas));
                wire::put_varint(&mut self.hash, u64::from(threads));
            }
            if self.cursor_warp < self.kernel_warps {
                break;
            }
            self.cursor_kernel += 1;
            self.cursor_warp = 0;
        }
        let ops = match self.version {
            VERSION_1 => wire::decode_ops(&mut self.src, &self.limits)?,
            _ => {
                if self.chunk_warps_left == 0 {
                    self.load_chunk()?;
                }
                let chunk = std::mem::take(&mut self.chunk);
                let mut r = SliceReader {
                    buf: &chunk,
                    pos: self.chunk_pos,
                };
                let decoded = wire::decode_ops(&mut r, &self.limits);
                self.chunk_pos = r.pos;
                self.chunk = chunk;
                let decoded = decoded?;
                self.chunk_warps_left -= 1;
                if self.chunk_warps_left == 0 && self.chunk_pos != self.chunk.len() {
                    return Err(TraceReadError::corrupt("trailing bytes in warp chunk"));
                }
                decoded
            }
        };
        wire::encode_ops(&mut self.hash, &ops);
        self.total_warps += 1;
        self.total_ops += ops.len() as u64;
        self.total_warp_instrs += ops.iter().map(Op::warp_instrs).sum::<u64>();
        let meta = &self.kernels[self.cursor_kernel];
        let wpc = u64::from(meta.warps_per_cta());
        let warp = TracedWarp {
            kernel: self.cursor_kernel,
            cta: (self.cursor_warp / wpc) as u32,
            warp: (self.cursor_warp % wpc) as u32,
            ops,
        };
        self.cursor_warp += 1;
        if self.cursor_warp == self.kernel_warps {
            self.cursor_kernel += 1;
            self.cursor_warp = 0;
        }
        Ok(Some(warp))
    }

    /// Trace format version (1 or 2).
    pub fn version(&self) -> u8 {
        self.version
    }

    /// Workload name recorded in the trace.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of kernels the trace declares.
    pub fn n_kernels(&self) -> usize {
        self.n_kernels
    }

    /// Kernel metadata known so far. Complete up front for v2; for v1 it
    /// grows as the stream reaches each kernel, and is complete once
    /// [`TraceReader::next_warp`] has returned `Ok(None)`.
    pub fn kernels(&self) -> &[KernelMeta] {
        &self.kernels
    }

    /// Totals, semantic hash, and memory gauges — available only after the
    /// whole trace was consumed (`next_warp` returned `Ok(None)`).
    pub fn stats(&self) -> Option<&TraceStats> {
        self.stats.as_ref()
    }
}
