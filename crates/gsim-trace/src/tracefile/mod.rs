//! Binary trace files: record a workload's instruction streams once,
//! replay them anywhere.
//!
//! Accel-Sim, the simulator this workspace stands in for, is
//! *trace-driven*: workloads are captured as instruction traces and the
//! timing model replays them. This module provides the same workflow:
//! [`write_trace`] serialises every warp stream of any [`WorkloadModel`]
//! into a compact binary format, [`TraceReader`] streams a recorded file
//! back warp by warp with bounded memory, and [`TracedWorkload`] replays
//! a fully decoded file through the simulator via [`WorkloadModel`].
//! Traces are deterministic and self-contained, so they can be shared
//! without the generator.
//!
//! # Format version 2 (current)
//!
//! All integers are LEB128 varints unless noted. After a 5-byte preamble
//! (magic `"GSTR"`, version byte `2`) the file is a sequence of frames:
//!
//! ```text
//! kind          u8 (1 = header, 2 = warp chunk, 3 = end)
//! payload_len   varint
//! payload       payload_len bytes
//! checksum      u64 LE, FNV-1a 64 of the payload
//! ```
//!
//! * **Header** (first frame, exactly once): workload name, `n_kernels`,
//!   then per kernel its name, `n_ctas`, and `threads_per_cta`.
//! * **Warp chunk**: `kernel_idx`, `first_warp` (global CTA-major warp
//!   index within the kernel), `n_warps`, then `n_warps` warp encodings.
//!   Chunks cover each kernel's warps contiguously and never span
//!   kernels; writers flush at ~64 KiB, so readers decode with memory
//!   bounded by the chunk size, not the trace size.
//! * **End** (last frame, exactly once): total warps, total ops, total
//!   warp instructions — cross-checked against the decoded body.
//!
//! # Format version 1 (legacy, still readable)
//!
//! The same preamble with version byte `1`, then an unframed body: name,
//! `n_kernels`, and per kernel its name, `n_ctas`, `threads_per_cta`,
//! and every warp's ops back to back (CTA-major).
//!
//! # Op encoding (identical in both versions)
//!
//! Each warp starts with a varint op-count. Ops are tagged with one byte:
//! bits 1..0 = kind (0 compute, 1 load, 2 store, 3 atomic); bit 2 = L1
//! bypass. Compute carries a varint batch size; memory ops carry `txns`
//! (u8), a varint transaction stride, and the line address as a zigzag
//! varint delta against the previous memory address of the same warp —
//! sequential streams compress to ~2 bytes per access. The delta baseline
//! resets per warp.
//!
//! # Semantic hash
//!
//! [`semantic_hash_of`] gives every workload a 64-bit content identity:
//! FNV-1a over `n_kernels`, then per kernel `n_ctas`,
//! `threads_per_cta`, and every warp's canonical op encoding. Names and
//! framing are excluded, so the same instruction streams hash identically
//! whether generated synthetically, read from a v1 file, or read from a
//! v2 file — this is the content address the trace store and the serve
//! stage cache key on. [`TraceReader`] computes it incrementally while
//! streaming.

mod reader;
mod wire;
mod writer;

use std::error::Error;
use std::fmt;
use std::io::{self, Read};

use crate::model::WorkloadModel;
use crate::op::Op;
use crate::pattern::WarpStream;

pub use reader::TraceReader;
pub use writer::{write_trace, write_trace_v1};

/// Frame kind: the header frame (first, exactly once).
const FRAME_HEADER: u8 = 1;
/// Frame kind: a warp-chunk frame.
const FRAME_CHUNK: u8 = 2;
/// Frame kind: the end-of-trace frame (last, exactly once).
const FRAME_END: u8 = 3;

/// Decode-side resource limits. Every length and count a trace file
/// declares is validated against these before any allocation or further
/// reading, so hostile inputs fail cleanly instead of exhausting memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceLimits {
    /// Maximum total file size consumed, in bytes.
    pub max_file_bytes: u64,
    /// Maximum v2 frame payload size, in bytes.
    pub max_chunk_bytes: u64,
    /// Maximum number of kernels a trace may declare.
    pub max_kernels: u64,
    /// Maximum total warps across all kernels.
    pub max_warps: u64,
    /// Maximum ops a single warp may declare.
    pub max_ops_per_warp: u64,
    /// Maximum length of workload/kernel names, in bytes.
    pub max_name_bytes: u64,
}

impl Default for TraceLimits {
    fn default() -> Self {
        Self {
            max_file_bytes: 1 << 30,
            max_chunk_bytes: 16 << 20,
            max_kernels: 4096,
            max_warps: 1 << 24,
            max_ops_per_warp: 1 << 26,
            max_name_bytes: 4096,
        }
    }
}

impl TraceLimits {
    /// Returns a copy with `max_file_bytes` replaced (the most commonly
    /// tightened knob — e.g. an upload body cap).
    #[must_use]
    pub fn with_max_file_bytes(mut self, bytes: u64) -> Self {
        self.max_file_bytes = bytes;
        self
    }
}

/// Why a trace failed to decode. Variants are distinct so callers (the
/// CLI, the trace store, the HTTP service) can surface precise failure
/// classes — wrong file type vs. wrong version vs. corruption vs. a
/// resource limit.
#[derive(Debug)]
pub enum TraceReadError {
    /// The input does not start with the `GSTR` magic (or is shorter than
    /// the preamble).
    NotATrace,
    /// The version byte names a format this reader does not know.
    UnsupportedVersion(u8),
    /// A declared size or count exceeds the configured [`TraceLimits`].
    TooLarge(String),
    /// The input is recognisably a trace but structurally invalid:
    /// truncated, checksum mismatch, out-of-order chunks, bad totals, …
    Corrupt(String),
    /// The underlying reader failed.
    Io(io::Error),
}

impl TraceReadError {
    fn corrupt(msg: impl Into<String>) -> Self {
        Self::Corrupt(msg.into())
    }
}

impl fmt::Display for TraceReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NotATrace => write!(f, "not a GSTR trace file"),
            Self::UnsupportedVersion(v) => write!(f, "unsupported trace version {v}"),
            Self::TooLarge(msg) => write!(f, "trace exceeds limits: {msg}"),
            Self::Corrupt(msg) => write!(f, "corrupt trace: {msg}"),
            Self::Io(e) => write!(f, "trace I/O error: {e}"),
        }
    }
}

impl Error for TraceReadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceReadError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<TraceReadError> for io::Error {
    fn from(e: TraceReadError) -> Self {
        match e {
            TraceReadError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Static description of one kernel, as recorded in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelMeta {
    /// Kernel display name.
    pub name: String,
    /// Grid size in CTAs.
    pub n_ctas: u32,
    /// Threads per CTA (1..=1024).
    pub threads_per_cta: u32,
}

impl KernelMeta {
    /// Warps per CTA (threads rounded up to 32-wide warps).
    pub fn warps_per_cta(&self) -> u32 {
        self.threads_per_cta.div_ceil(32)
    }
}

/// Totals and gauges accumulated by a [`TraceReader`] over a full pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Warps decoded.
    pub total_warps: u64,
    /// Ops decoded across all warps.
    pub total_ops: u64,
    /// Warp instructions (compute batches weighted by batch size).
    pub total_warp_instrs: u64,
    /// Content identity of the decoded streams (see [`semantic_hash_of`]).
    pub semantic_hash: u64,
    /// Bytes consumed from the input.
    pub bytes_read: u64,
    /// Peak bytes buffered while decoding (input buffer + current chunk);
    /// bounded by the chunk size, not the trace size.
    pub peak_buffer_bytes: usize,
}

/// One decoded warp, as yielded by [`TraceReader::next_warp`].
#[derive(Debug, Clone)]
pub struct TracedWarp {
    /// Kernel index.
    pub kernel: usize,
    /// CTA index within the kernel's grid.
    pub cta: u32,
    /// Warp index within the CTA.
    pub warp: u32,
    /// The warp's full op stream.
    pub ops: Vec<Op>,
}

/// Computes the content identity of a workload: the FNV-1a 64 hash of its
/// kernel grids and every warp's canonical op encoding, excluding all
/// names. Two workloads hash equal iff the simulator would see identical
/// instruction streams, regardless of how they are stored or labelled.
pub fn semantic_hash_of<M: WorkloadModel>(wl: &M) -> u64 {
    let mut sink = wire::FnvSink::new();
    wire::put_varint(&mut sink, wl.n_kernels() as u64);
    let mut ops = Vec::new();
    for k in 0..wl.n_kernels() {
        let (n_ctas, threads_per_cta) = wl.grid(k);
        wire::put_varint(&mut sink, u64::from(n_ctas));
        wire::put_varint(&mut sink, u64::from(threads_per_cta));
        for cta in 0..n_ctas {
            for warp in 0..wl.warps_per_cta(k) {
                ops.clear();
                let mut stream = wl.warp_stream(k, cta, warp);
                while let Some(op) = stream.next_op() {
                    ops.push(op);
                }
                wire::encode_ops(&mut sink, &ops);
            }
        }
    }
    sink.0
}

#[derive(Debug, Clone)]
struct TracedKernel {
    name: String,
    n_ctas: u32,
    threads_per_cta: u32,
    /// Ops per warp, CTA-major.
    warps: Vec<Vec<Op>>,
}

/// A workload read back from a trace file; replayable through the
/// simulator via [`WorkloadModel`].
#[derive(Debug, Clone)]
pub struct TracedWorkload {
    name: String,
    kernels: Vec<TracedKernel>,
    total_warp_instrs: u64,
}

impl TracedWorkload {
    /// Reads and fully materialises a trace (either format version) with
    /// default [`TraceLimits`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceReadError`] on I/O failure or a malformed,
    /// oversized, or unsupported file. `?` still works in `io::Result`
    /// contexts via the provided `From` conversion.
    pub fn read<R: Read>(input: R) -> Result<Self, TraceReadError> {
        Self::read_with_limits(input, TraceLimits::default())
    }

    /// As [`TracedWorkload::read`], with explicit limits — e.g. a
    /// caller-configured maximum file size.
    ///
    /// # Errors
    ///
    /// As [`TracedWorkload::read`].
    pub fn read_with_limits<R: Read>(
        input: R,
        limits: TraceLimits,
    ) -> Result<Self, TraceReadError> {
        let mut reader = TraceReader::with_limits(input, limits)?;
        let mut warps_by_kernel: Vec<Vec<Vec<Op>>> = Vec::new();
        while let Some(w) = reader.next_warp()? {
            if warps_by_kernel.len() <= w.kernel {
                warps_by_kernel.resize_with(w.kernel + 1, Vec::new);
            }
            warps_by_kernel[w.kernel].push(w.ops);
        }
        let stats = *reader.stats().expect("reader finished");
        warps_by_kernel.resize_with(reader.n_kernels(), Vec::new);
        let kernels = reader
            .kernels()
            .iter()
            .zip(warps_by_kernel)
            .map(|(meta, warps)| TracedKernel {
                name: meta.name.clone(),
                n_ctas: meta.n_ctas,
                threads_per_cta: meta.threads_per_cta,
                warps,
            })
            .collect();
        Ok(Self {
            name: reader.name().to_string(),
            kernels,
            total_warp_instrs: stats.total_warp_instrs,
        })
    }

    /// Name of kernel `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn kernel_name(&self, kernel: usize) -> &str {
        &self.kernels[kernel].name
    }

    /// Total warp instructions recorded.
    pub fn total_warp_instrs(&self) -> u64 {
        self.total_warp_instrs
    }

    /// Keeps only the first `ceil(n_ctas * fraction)` CTAs of each kernel
    /// — the kernel-sampling acceleration of prior work (Baddouh et al.'s
    /// principal kernel analysis family \[8\]): the sampled CTAs' streams
    /// are bit-identical to the full run's, only the grid shrinks. The
    /// per-kernel scale factors `n_full / n_sampled` are returned for
    /// extrapolation.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction <= 1`.
    pub fn with_cta_fraction(&self, fraction: f64) -> (TracedWorkload, Vec<f64>) {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        let mut factors = Vec::with_capacity(self.kernels.len());
        let mut total = 0u64;
        let kernels = self
            .kernels
            .iter()
            .map(|k| {
                let keep = ((f64::from(k.n_ctas) * fraction).ceil() as u32).clamp(1, k.n_ctas);
                factors.push(f64::from(k.n_ctas) / f64::from(keep));
                let wpc = k.threads_per_cta.div_ceil(32) as usize;
                let warps: Vec<Vec<Op>> = k.warps[..keep as usize * wpc].to_vec();
                total += warps
                    .iter()
                    .flat_map(|ops| ops.iter().map(Op::warp_instrs))
                    .sum::<u64>();
                TracedKernel {
                    name: k.name.clone(),
                    n_ctas: keep,
                    threads_per_cta: k.threads_per_cta,
                    warps,
                }
            })
            .collect();
        (
            TracedWorkload {
                name: format!("{}@{:.3}", self.name, fraction),
                kernels,
                total_warp_instrs: total,
            },
            factors,
        )
    }
}

/// Replay stream over a recorded warp (an owned op cursor).
#[derive(Debug, Clone)]
pub struct TraceStream {
    ops: std::vec::IntoIter<Op>,
}

impl WarpStream for TraceStream {
    fn next_op(&mut self) -> Option<Op> {
        self.ops.next()
    }
}

impl WorkloadModel for TracedWorkload {
    type Stream = TraceStream;

    fn name(&self) -> &str {
        &self.name
    }

    fn n_kernels(&self) -> usize {
        self.kernels.len()
    }

    fn grid(&self, kernel: usize) -> (u32, u32) {
        let k = &self.kernels[kernel];
        (k.n_ctas, k.threads_per_cta)
    }

    fn warp_stream(&self, kernel: usize, cta: u32, warp: u32) -> TraceStream {
        let k = &self.kernels[kernel];
        let wpc = k.threads_per_cta.div_ceil(32);
        assert!(
            cta < k.n_ctas && warp < wpc,
            "warp coordinates out of range"
        );
        let idx = (cta * wpc + warp) as usize;
        TraceStream {
            ops: k.warps[idx].clone().into_iter(),
        }
    }

    fn approx_warp_instrs(&self) -> u64 {
        self.total_warp_instrs
    }

    fn kernel_name(&self, kernel: usize) -> String {
        self.kernels[kernel].name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Kernel, Workload};
    use crate::pattern::{PatternKind, PatternSpec};

    fn demo() -> Workload {
        let sweep = PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 512)
            .compute_per_mem(1.5)
            .write_frac(0.2);
        let chase = PatternSpec::new(PatternKind::PointerChase, 4096)
            .mem_ops_per_warp(20)
            .divergence(4)
            .shared_hot(0.1, 8);
        Workload::new(
            "demo",
            77,
            vec![
                Kernel::new("sweep", 12, 256, sweep),
                Kernel::new("chase", 6, 128, chase),
            ],
        )
    }

    fn assert_replays_identically(wl: &Workload, traced: &TracedWorkload) {
        for kidx in 0..wl.kernels().len() {
            let k = &wl.kernels()[kidx];
            for cta in 0..k.n_ctas() {
                for warp in 0..k.warps_per_cta() {
                    let mut orig = k.warp_stream(wl, kidx, cta, warp);
                    let mut replay = traced.warp_stream(kidx, cta, warp);
                    loop {
                        let (a, b) = (orig.next_op(), replay.next_op());
                        assert_eq!(a, b, "kernel {kidx} cta {cta} warp {warp}");
                        if a.is_none() {
                            break;
                        }
                    }
                }
            }
        }
    }

    fn roundtrip(wl: &Workload) -> TracedWorkload {
        let mut bytes = Vec::new();
        write_trace(wl, &mut bytes).expect("in-memory write");
        TracedWorkload::read(&bytes[..]).expect("well-formed trace")
    }

    #[test]
    fn v2_roundtrip_preserves_every_op() {
        let wl = demo();
        let traced = roundtrip(&wl);
        assert_eq!(WorkloadModel::name(&traced), "demo");
        assert_eq!(traced.n_kernels(), 2);
        assert_eq!(traced.grid(0), (12, 256));
        assert_eq!(traced.kernel_name(1), "chase");
        assert_replays_identically(&wl, &traced);
        assert_eq!(traced.total_warp_instrs(), wl.approx_warp_instrs());
    }

    #[test]
    fn v1_roundtrip_preserves_every_op() {
        let wl = demo();
        let mut bytes = Vec::new();
        write_trace_v1(&wl, &mut bytes).expect("write v1");
        assert_eq!(bytes[4], 1, "v1 writer emits version byte 1");
        let traced = TracedWorkload::read(&bytes[..]).expect("read v1");
        assert_replays_identically(&wl, &traced);
        assert_eq!(traced.total_warp_instrs(), wl.approx_warp_instrs());
    }

    #[test]
    fn semantic_hash_is_version_and_name_independent() {
        let wl = demo();
        let direct = semantic_hash_of(&wl);

        let mut v2 = Vec::new();
        write_trace(&wl, &mut v2).expect("write v2");
        let mut v1 = Vec::new();
        write_trace_v1(&wl, &mut v1).expect("write v1");
        for bytes in [&v2, &v1] {
            let mut reader = TraceReader::new(&bytes[..]).expect("open");
            while reader.next_warp().expect("stream").is_some() {}
            assert_eq!(reader.stats().expect("done").semantic_hash, direct);
        }

        // Renaming workload/kernels does not change the identity…
        let renamed = Workload::new("other-name", 77, {
            let sweep = PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 512)
                .compute_per_mem(1.5)
                .write_frac(0.2);
            let chase = PatternSpec::new(PatternKind::PointerChase, 4096)
                .mem_ops_per_warp(20)
                .divergence(4)
                .shared_hot(0.1, 8);
            vec![
                Kernel::new("a", 12, 256, sweep),
                Kernel::new("b", 6, 128, chase),
            ]
        });
        assert_eq!(semantic_hash_of(&renamed), direct);

        // …but changing the streams does.
        let other = Workload::new("demo", 78, {
            let sweep = PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 512)
                .compute_per_mem(1.5)
                .write_frac(0.2);
            vec![Kernel::new("sweep", 12, 256, sweep)]
        });
        assert_ne!(semantic_hash_of(&other), direct);
    }

    #[test]
    fn sequential_traces_compress_well() {
        let sweep =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 4096).compute_per_mem(1.0);
        let wl = Workload::new("seq", 1, vec![Kernel::new("k", 16, 256, sweep)]);
        let mut bytes = Vec::new();
        write_trace(&wl, &mut bytes).expect("write");
        let ops = wl.approx_warp_instrs();
        let per_op = bytes.len() as f64 / ops as f64;
        assert!(
            per_op < 5.0,
            "expected compact encoding, got {per_op:.1} B/op"
        );
    }

    #[test]
    fn rejects_garbage_magic_version_and_truncation() {
        assert!(matches!(
            TracedWorkload::read(&b"NOPE"[..]),
            Err(TraceReadError::NotATrace)
        ));
        assert!(matches!(
            TracedWorkload::read(&b""[..]),
            Err(TraceReadError::NotATrace)
        ));
        let wl = demo();
        let mut bytes = Vec::new();
        write_trace(&wl, &mut bytes).expect("write");
        let cut = &bytes[..bytes.len() / 2];
        assert!(TracedWorkload::read(cut).is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(matches!(
            TracedWorkload::read(&wrong_version[..]),
            Err(TraceReadError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn detects_payload_corruption_via_checksum() {
        let wl = demo();
        let mut bytes = Vec::new();
        write_trace(&wl, &mut bytes).expect("write");
        // Flip one bit somewhere inside the frame stream (past the
        // preamble); the frame checksum must catch it.
        let mid = 5 + (bytes.len() - 5) / 2;
        bytes[mid] ^= 0x40;
        let err = TracedWorkload::read(&bytes[..]).expect_err("corruption detected");
        assert!(
            matches!(
                err,
                TraceReadError::Corrupt(_) | TraceReadError::TooLarge(_)
            ),
            "unexpected error class: {err}"
        );
    }

    #[test]
    fn streaming_reader_reports_stats() {
        let wl = demo();
        let mut bytes = Vec::new();
        write_trace(&wl, &mut bytes).expect("write");
        let mut reader = TraceReader::new(&bytes[..]).expect("open");
        assert_eq!(reader.version(), 2);
        assert_eq!(reader.name(), "demo");
        assert_eq!(reader.n_kernels(), 2);
        assert_eq!(reader.kernels().len(), 2, "v2 metadata is known up front");
        assert!(reader.stats().is_none(), "no stats before the end");
        let mut warps = 0u64;
        while let Some(w) = reader.next_warp().expect("clean stream") {
            assert!(w.kernel < 2);
            warps += 1;
        }
        let stats = reader.stats().expect("stats after the end");
        assert_eq!(stats.total_warps, warps);
        assert_eq!(stats.total_warp_instrs, wl.approx_warp_instrs());
        assert_eq!(stats.semantic_hash, semantic_hash_of(&wl));
        assert_eq!(stats.bytes_read, bytes.len() as u64);
    }

    #[test]
    fn hostile_counts_fail_cleanly_without_huge_allocation() {
        // A tiny v1 file declaring a huge kernel count must not
        // preallocate; it must fail with a clean error.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"GSTR");
        bytes.push(1);
        bytes.push(0); // empty name
        bytes.extend_from_slice(&[0xff; 9]); // varint ≈ u64::MAX kernels
        bytes.push(0x01);
        assert!(TracedWorkload::read(&bytes[..]).is_err());

        // A v1 file declaring a huge CTA grid (huge warp count) likewise.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"GSTR");
        bytes.push(1);
        bytes.push(0); // empty workload name
        bytes.push(1); // one kernel
        bytes.push(0); // empty kernel name
        bytes.extend_from_slice(&[0xff, 0xff, 0xff, 0xff, 0x0f]); // n_ctas = u32::MAX
        bytes.push(32); // threads_per_cta = 32
        let err = TracedWorkload::read(&bytes[..]).expect_err("warp budget");
        assert!(matches!(err, TraceReadError::TooLarge(_)), "got {err}");

        // And a max-size file limit is enforceable.
        let wl = demo();
        let mut trace = Vec::new();
        write_trace(&wl, &mut trace).expect("write");
        let tight = TraceLimits::default().with_max_file_bytes(16);
        let err = TracedWorkload::read_with_limits(&trace[..], tight).expect_err("file too big");
        assert!(matches!(err, TraceReadError::TooLarge(_)), "got {err}");
    }

    #[test]
    fn cta_sampling_keeps_prefix_streams_identical() {
        let wl = demo();
        let traced = roundtrip(&wl);
        let (half, factors) = traced.with_cta_fraction(0.5);
        assert_eq!(half.grid(0).0, 6); // 12 CTAs -> 6
        assert_eq!(half.grid(1).0, 3);
        assert_eq!(factors, vec![2.0, 2.0]);
        let mut a = traced.warp_stream(0, 2, 1);
        let mut b = half.warp_stream(0, 2, 1);
        loop {
            let (x, y) = (a.next_op(), b.next_op());
            assert_eq!(x, y);
            if x.is_none() {
                break;
            }
        }
        assert!(half.total_warp_instrs() < traced.total_warp_instrs());
    }
}
