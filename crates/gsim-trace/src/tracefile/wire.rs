//! Shared wire-format primitives for trace files.
//!
//! Both trace format versions encode ops identically (tag byte + varint
//! fields, zigzag address deltas reset per warp); they differ only in
//! framing. This module holds the primitives both sides share, written
//! against two small abstractions:
//!
//! * [`Sink`] — a byte destination. Implemented by `Vec<u8>` (file
//!   writing) and [`FnvSink`] (semantic hashing), so the exact bytes a
//!   warp serialises to are also the bytes it hashes to.
//! * [`ByteGet`] — a byte source. Implemented by [`SliceReader`]
//!   (decoding a v2 chunk payload held in memory) and the streaming
//!   `ByteSource` in the reader module (decoding a v1 body straight off
//!   an `io::Read`), so there is exactly one op decoder.

use crate::op::{MemAccess, MemSpace, Op};

use super::{TraceLimits, TraceReadError};

/// File magic, shared by every version.
pub(super) const MAGIC: &[u8; 4] = b"GSTR";
/// Original whole-buffer format.
pub(super) const VERSION_1: u8 = 1;
/// Chunked/framed streaming format.
pub(super) const VERSION_2: u8 = 2;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into a running FNV-1a 64-bit hash.
pub(super) fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// One-shot FNV-1a 64 (used for v2 frame checksums).
pub(super) fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(FNV_OFFSET, bytes)
}

/// A byte destination for the encoders.
pub(super) trait Sink {
    /// Appends one byte.
    fn put(&mut self, b: u8);
    /// Appends a slice.
    fn put_slice(&mut self, s: &[u8]);
}

impl Sink for Vec<u8> {
    fn put(&mut self, b: u8) {
        self.push(b);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }
}

/// A [`Sink`] that hashes instead of storing — encoding into it computes
/// the FNV-1a 64 of the encoded bytes without materialising them.
pub(super) struct FnvSink(pub u64);

impl FnvSink {
    pub(super) fn new() -> Self {
        Self(FNV_OFFSET)
    }
}

impl Sink for FnvSink {
    fn put(&mut self, b: u8) {
        self.0 = fnv1a_update(self.0, &[b]);
    }
    fn put_slice(&mut self, s: &[u8]) {
        self.0 = fnv1a_update(self.0, s);
    }
}

/// A byte source for the decoders.
pub(super) trait ByteGet {
    /// Reads one byte; clean error (never a panic) on exhaustion.
    fn get_u8(&mut self) -> Result<u8, TraceReadError>;
    /// Reads exactly `len` bytes into `out` (cleared first). Must not
    /// preallocate proportionally to a hostile `len`.
    fn take_into(&mut self, len: usize, out: &mut Vec<u8>) -> Result<(), TraceReadError>;
}

/// [`ByteGet`] over an in-memory slice (v2 chunk payloads).
pub(super) struct SliceReader<'a> {
    pub(super) buf: &'a [u8],
    pub(super) pos: usize,
}

impl<'a> SliceReader<'a> {
    pub(super) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(super) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

impl ByteGet for SliceReader<'_> {
    fn get_u8(&mut self) -> Result<u8, TraceReadError> {
        let b = self
            .buf
            .get(self.pos)
            .copied()
            .ok_or_else(|| TraceReadError::corrupt("truncated payload"))?;
        self.pos += 1;
        Ok(b)
    }

    fn take_into(&mut self, len: usize, out: &mut Vec<u8>) -> Result<(), TraceReadError> {
        out.clear();
        if self.remaining() < len {
            return Err(TraceReadError::corrupt("truncated payload"));
        }
        out.extend_from_slice(&self.buf[self.pos..self.pos + len]);
        self.pos += len;
        Ok(())
    }
}

pub(super) fn put_varint<S: Sink>(out: &mut S, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.put(byte);
            return;
        }
        out.put(byte | 0x80);
    }
}

pub(super) fn get_varint<G: ByteGet>(src: &mut G) -> Result<u64, TraceReadError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = src.get_u8()?;
        if shift >= 64 {
            return Err(TraceReadError::corrupt("varint overflow"));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

pub(super) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

pub(super) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

pub(super) fn put_string<S: Sink>(out: &mut S, s: &str) {
    put_varint(out, s.len() as u64);
    out.put_slice(s.as_bytes());
}

pub(super) fn get_string<G: ByteGet>(
    src: &mut G,
    limits: &TraceLimits,
) -> Result<String, TraceReadError> {
    let len = get_varint(src)?;
    if len > limits.max_name_bytes {
        return Err(TraceReadError::corrupt(format!(
            "name length {len} exceeds limit {}",
            limits.max_name_bytes
        )));
    }
    let mut bytes = Vec::new();
    src.take_into(len as usize, &mut bytes)?;
    String::from_utf8(bytes).map_err(|_| TraceReadError::corrupt("name is not UTF-8"))
}

/// Serialises one warp's ops: varint op-count, then tagged ops. The
/// address-delta baseline resets to zero at the start of every warp, so a
/// warp's encoding is independent of its neighbours (what lets v2 chunk
/// and hash warps individually).
pub(super) fn encode_ops<S: Sink>(out: &mut S, ops: &[Op]) {
    put_varint(out, ops.len() as u64);
    let mut last_addr: i64 = 0;
    for op in ops {
        match op {
            Op::Compute { n } => {
                out.put(0);
                put_varint(out, u64::from(*n));
            }
            Op::Load(m) | Op::Store(m) | Op::Atomic(m) => {
                let kind: u8 = match op {
                    Op::Load(_) => 1,
                    Op::Store(_) => 2,
                    _ => 3,
                };
                let bypass = if m.space == MemSpace::BypassL1 { 4 } else { 0 };
                out.put(kind | bypass);
                out.put(m.txns);
                put_varint(out, u64::from(m.txn_stride_lines));
                put_varint(out, zigzag(m.line_addr as i64 - last_addr));
                last_addr = m.line_addr as i64;
            }
        }
    }
}

/// Decodes one warp's ops. Every length is validated before use: the
/// op-count is capped by `limits.max_ops_per_warp` and the preallocation
/// is capped independently, so a hostile count cannot trigger a huge
/// allocation.
pub(super) fn decode_ops<G: ByteGet>(
    src: &mut G,
    limits: &TraceLimits,
) -> Result<Vec<Op>, TraceReadError> {
    let n = get_varint(src)?;
    if n > limits.max_ops_per_warp {
        return Err(TraceReadError::TooLarge(format!(
            "warp declares {n} ops, limit is {}",
            limits.max_ops_per_warp
        )));
    }
    let mut ops = Vec::with_capacity((n as usize).min(1 << 16));
    let mut last_addr: i64 = 0;
    for _ in 0..n {
        let tag = src.get_u8()?;
        match tag & 0x03 {
            0 => {
                let batch = get_varint(src)?;
                let batch = u16::try_from(batch)
                    .map_err(|_| TraceReadError::corrupt("compute batch exceeds u16"))?;
                ops.push(Op::Compute { n: batch });
            }
            kind => {
                let txns = src.get_u8()?;
                let stride = get_varint(src)?;
                let stride = u32::try_from(stride)
                    .map_err(|_| TraceReadError::corrupt("transaction stride exceeds u32"))?;
                let delta = unzigzag(get_varint(src)?);
                let addr = last_addr
                    .checked_add(delta)
                    .ok_or_else(|| TraceReadError::corrupt("address delta overflow"))?;
                if addr < 0 {
                    return Err(TraceReadError::corrupt("negative line address"));
                }
                last_addr = addr;
                let access = MemAccess {
                    line_addr: addr as u64,
                    txns,
                    txn_stride_lines: stride,
                    space: if tag & 4 != 0 {
                        MemSpace::BypassL1
                    } else {
                        MemSpace::Global
                    },
                };
                ops.push(match kind {
                    1 => Op::Load(access),
                    2 => Op::Store(access),
                    _ => Op::Atomic(access),
                });
            }
        }
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_and_zigzag_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), 1 << 50] {
            let mut b = Vec::new();
            put_varint(&mut b, v);
            let mut r = SliceReader::new(&b);
            assert_eq!(get_varint(&mut r).unwrap(), v);
        }
        for v in [0i64, 1, -1, 63, -64, 1 << 40, -(1 << 40)] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Same reference vectors as gsim-serve's cache hasher.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_sink_matches_buffered_encoding() {
        let ops = vec![
            Op::Compute { n: 3 },
            Op::Load(MemAccess::coalesced(100)),
            Op::Store(MemAccess::coalesced(40)),
        ];
        let mut buf = Vec::new();
        encode_ops(&mut buf, &ops);
        let mut sink = FnvSink::new();
        encode_ops(&mut sink, &ops);
        assert_eq!(sink.0, fnv1a(&buf));
    }

    #[test]
    fn hostile_op_count_is_rejected_without_allocation() {
        let mut b = Vec::new();
        put_varint(&mut b, u64::MAX); // absurd op count
        let mut r = SliceReader::new(&b);
        let err = decode_ops(&mut r, &TraceLimits::default()).unwrap_err();
        assert!(matches!(err, TraceReadError::TooLarge(_)));
    }
}
