//! Cross-version codec round-trips over the whole synthetic suite.
//!
//! Every strong- and weak-scaling workload is encoded in both trace
//! formats and decoded back; the decoded streams must match the
//! generator op for op, and the content identity (semantic hash) must be
//! independent of the encoding version. Randomized workloads across all
//! pattern kinds widen the input space beyond the curated suite, and the
//! streaming decoder is checked against the buffered one — including
//! under pathological one-byte reads — plus a multi-megabyte trace whose
//! decode must stay bounded by the chunk size, not the trace size.

use std::io::Read;

use gsim_rng::Rng64;
use gsim_trace::suite::strong_suite;
use gsim_trace::weak::weak_suite;
use gsim_trace::{
    semantic_hash_of, write_trace, write_trace_v1, Kernel, MemScale, PatternKind, PatternSpec,
    TraceReader, TracedWorkload, WarpStream, Workload, WorkloadModel,
};

/// Caps every kernel's grid so encoding all ~30 suite workloads twice
/// stays fast. The patterns, per-warp streams, and kernel sequences are
/// preserved; only the grid shrinks.
fn shrunk(wl: &Workload) -> Workload {
    let kernels = wl
        .kernels()
        .iter()
        .map(|k| {
            Kernel::new(
                k.name(),
                k.n_ctas().min(12),
                k.threads_per_cta(),
                k.spec().clone(),
            )
        })
        .collect();
    Workload::new(wl.name(), wl.seed(), kernels)
}

/// Asserts two workload models yield identical op streams for every warp.
fn assert_same_streams<A: WorkloadModel, B: WorkloadModel>(a: &A, b: &B, label: &str) {
    assert_eq!(a.n_kernels(), b.n_kernels(), "{label}: kernel count");
    for kernel in 0..a.n_kernels() {
        assert_eq!(a.grid(kernel), b.grid(kernel), "{label}: kernel {kernel}");
        let (n_ctas, _) = a.grid(kernel);
        for cta in 0..n_ctas {
            for warp in 0..a.warps_per_cta(kernel) {
                let mut x = a.warp_stream(kernel, cta, warp);
                let mut y = b.warp_stream(kernel, cta, warp);
                loop {
                    let (ox, oy) = (x.next_op(), y.next_op());
                    assert_eq!(ox, oy, "{label}: kernel {kernel} cta {cta} warp {warp}");
                    if ox.is_none() {
                        break;
                    }
                }
            }
        }
    }
}

/// Round-trips one workload through both formats and checks op-level
/// equality plus version-independent content identity.
fn check_roundtrip(wl: &Workload, label: &str) {
    let mut v2 = Vec::new();
    write_trace(wl, &mut v2).expect("write v2");
    let mut v1 = Vec::new();
    write_trace_v1(wl, &mut v1).expect("write v1");
    assert_eq!(v2[4], 2, "{label}: v2 version byte");
    assert_eq!(v1[4], 1, "{label}: v1 version byte");

    let from_v2 = TracedWorkload::read(&v2[..]).unwrap_or_else(|e| panic!("{label} v2: {e}"));
    let from_v1 = TracedWorkload::read(&v1[..]).unwrap_or_else(|e| panic!("{label} v1: {e}"));
    assert_same_streams(wl, &from_v2, &format!("{label} via v2"));
    assert_same_streams(&from_v2, &from_v1, &format!("{label} v2 vs v1"));

    let direct = semantic_hash_of(wl);
    assert_eq!(semantic_hash_of(&from_v2), direct, "{label}: v2 identity");
    assert_eq!(semantic_hash_of(&from_v1), direct, "{label}: v1 identity");
    // Decoded traces count exact instructions; the synthetic generator's
    // `approx_warp_instrs` is only an estimate, so compare the two
    // decodes against each other.
    assert_eq!(
        from_v2.total_warp_instrs(),
        from_v1.total_warp_instrs(),
        "{label}: totals"
    );
}

#[test]
fn every_suite_workload_roundtrips_across_both_formats() {
    let scale = MemScale::default();
    for bench in strong_suite(scale) {
        check_roundtrip(&shrunk(&bench.workload), &format!("strong {}", bench.abbr));
    }
    for bench in weak_suite(scale) {
        // The smallest weak-scaling input; larger rows only scale the
        // grid, which `shrunk` caps anyway.
        check_roundtrip(
            &shrunk(&bench.workload_for_sms(8)),
            &format!("weak {}", bench.abbr),
        );
    }
}

#[test]
fn randomized_workloads_roundtrip_bit_exact() {
    let mut rng = Rng64::seed_from_u64(0x5eed_cafe);
    for case in 0..24 {
        let n_kernels = rng.gen_range(1, 4) as usize;
        let kernels = (0..n_kernels)
            .map(|i| {
                let footprint = rng.gen_range(64, 8192);
                let kind = match rng.gen_range(0, 5) {
                    0 => PatternKind::GlobalSweep {
                        passes: rng.gen_range(1, 4) as u32,
                    },
                    1 => PatternKind::Streaming,
                    2 => PatternKind::PointerChase,
                    3 => PatternKind::Tiled {
                        tile_lines: rng.gen_range(4, 64),
                        reuses: rng.gen_range(1, 8) as u32,
                    },
                    _ => PatternKind::WorkingSetMix {
                        levels: vec![(1.0, 0.25), (rng.next_f64() + 0.1, 0.75)],
                    },
                };
                let mut spec = PatternSpec::new(kind, footprint)
                    .mem_ops_per_warp(rng.gen_range(1, 40) as u32)
                    .compute_per_mem(rng.next_f64() * 4.0)
                    .write_frac(rng.next_f64() * 0.5)
                    .divergence(rng.gen_range(1, 9) as u8)
                    .tail_compute(rng.gen_range(0, 16) as u32);
                if rng.gen_bool(0.3) {
                    spec = spec.shared_hot(rng.next_f64() * 0.3, rng.gen_range(1, 32));
                }
                Kernel::new(
                    format!("k{i}"),
                    rng.gen_range(1, 8) as u32,
                    rng.gen_range(1, 512) as u32,
                    spec,
                )
            })
            .collect();
        let wl = Workload::new(format!("rand{case}"), rng.next_u64(), kernels);
        check_roundtrip(&wl, &format!("randomized case {case}"));
    }
}

/// A reader that returns at most `chunk` bytes per call — the worst-case
/// framing a network or pipe source can present.
struct SmallReads<R> {
    inner: R,
    chunk: usize,
}

impl<R: Read> Read for SmallReads<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = buf.len().min(self.chunk);
        self.inner.read(&mut buf[..n])
    }
}

#[test]
fn streaming_decoder_matches_buffered_even_under_tiny_reads() {
    let spec = PatternSpec::new(PatternKind::GlobalSweep { passes: 2 }, 2048)
        .compute_per_mem(1.5)
        .write_frac(0.25)
        .divergence(2);
    let wl = Workload::new("streamed", 9, vec![Kernel::new("k", 24, 192, spec)]);

    for (version, bytes) in [
        (2u8, {
            let mut b = Vec::new();
            write_trace(&wl, &mut b).expect("write v2");
            b
        }),
        (1u8, {
            let mut b = Vec::new();
            write_trace_v1(&wl, &mut b).expect("write v1");
            b
        }),
    ] {
        let buffered = TracedWorkload::read(&bytes[..]).expect("buffered read");
        let mut reader = TraceReader::new(SmallReads {
            inner: &bytes[..],
            chunk: 7,
        })
        .expect("streaming open");
        assert_eq!(reader.version(), version);
        let mut streamed_warps = 0u64;
        // Cross-check each streamed warp against the buffered replay.
        while let Some(warp) = reader.next_warp().expect("stream") {
            let mut replay = buffered.warp_stream(warp.kernel, warp.cta, warp.warp);
            for op in &warp.ops {
                assert_eq!(Some(*op), replay.next_op(), "v{version}");
            }
            assert_eq!(replay.next_op(), None, "v{version}: stream tail");
            streamed_warps += 1;
        }
        let stats = reader.stats().expect("stats");
        assert_eq!(stats.total_warps, streamed_warps);
        assert_eq!(stats.semantic_hash, semantic_hash_of(&wl), "v{version}");
        assert_eq!(stats.bytes_read, bytes.len() as u64, "v{version}");
    }
}

#[test]
fn multi_megabyte_trace_streams_with_bounded_memory() {
    // ~1.5M ops across 16K warps: a trace far larger than any single
    // chunk. The v2 decoder must hold one chunk at a time.
    let spec = PatternSpec::new(PatternKind::PointerChase, 1 << 20).mem_ops_per_warp(48);
    let wl = Workload::new("big", 3, vec![Kernel::new("k", 2048, 256, spec)]);
    let mut bytes = Vec::new();
    write_trace(&wl, &mut bytes).expect("write v2");
    assert!(
        bytes.len() > 3 * 1024 * 1024,
        "want a multi-MB trace, got {} bytes",
        bytes.len()
    );

    let mut reader = TraceReader::new(&bytes[..]).expect("open");
    while reader.next_warp().expect("stream").is_some() {}
    let stats = reader.stats().expect("stats");
    assert_eq!(stats.bytes_read, bytes.len() as u64);
    assert!(
        stats.peak_buffer_bytes < 1024 * 1024,
        "decode buffer must be bounded by the chunk size, not the \
         {}-byte trace: peak {}",
        bytes.len(),
        stats.peak_buffer_bytes
    );
}
