//! Randomized property tests on the workload substrate: every spec,
//! however configured, must yield deterministic, well-formed, correctly
//! counted streams that survive a trace-file round trip. Cases come from
//! the in-tree [`gsim_rng`] PRNG; the `ext-tests` feature multiplies the
//! case count.

use gsim_rng::Rng64;
use gsim_trace::{
    write_trace, Kernel, Op, PatternKind, PatternSpec, TracedWorkload, WarpStream, Workload,
    WorkloadModel,
};

fn cases(default: usize) -> usize {
    if cfg!(feature = "ext-tests") {
        default * 8
    } else {
        default
    }
}

fn f64_in(rng: &mut Rng64, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

fn arb_kind(rng: &mut Rng64) -> PatternKind {
    match rng.gen_range(0, 5) {
        0 => PatternKind::GlobalSweep {
            passes: rng.gen_range(1, 4) as u32,
        },
        1 => PatternKind::Streaming,
        2 => PatternKind::PointerChase,
        3 => PatternKind::Tiled {
            tile_lines: rng.gen_range(1, 8),
            reuses: rng.gen_range(2, 16) as u32,
        },
        _ => {
            let n_levels = rng.gen_range(1, 4);
            let levels = (0..n_levels)
                .map(|_| (f64_in(rng, 0.05, 1.0), f64_in(rng, 0.01, 4.0)))
                .collect();
            PatternKind::WorkingSetMix { levels }
        }
    }
}

fn arb_spec(rng: &mut Rng64) -> PatternSpec {
    let kind = arb_kind(rng);
    let footprint = rng.gen_range(16, 5000);
    let mut spec = PatternSpec::new(kind, footprint)
        .mem_ops_per_warp(rng.gen_range(1, 40) as u32)
        .compute_per_mem(f64_in(rng, 0.0, 4.0))
        .write_frac(f64_in(rng, 0.0, 0.6))
        .divergence(rng.gen_range(1, 8) as u8)
        .tail_compute(rng.gen_range(0, 100) as u32);
    if rng.gen_bool(0.5) {
        spec = spec.shared_hot(f64_in(rng, 0.01, 0.3), rng.gen_range(1, 32));
    }
    spec
}

fn drain(wl: &Workload, kernel: usize, cta: u32, warp: u32) -> Vec<Op> {
    let mut s = WorkloadModel::warp_stream(wl, kernel, cta, warp);
    std::iter::from_fn(move || s.next_op()).collect()
}

/// Streams are deterministic and the instruction estimate is exact.
#[test]
fn streams_are_deterministic_and_counted() {
    let mut rng = Rng64::seed_from_u64(0x7ace_0001);
    for _ in 0..cases(48) {
        let spec = arb_spec(&mut rng);
        let seed = rng.gen_range(0, 10_000);
        let ctas = rng.gen_range(1, 12) as u32;
        let wl = Workload::new("p", seed, vec![Kernel::new("k", ctas, 256, spec)]);
        let a = drain(&wl, 0, 0, 0);
        let b = drain(&wl, 0, 0, 0);
        assert_eq!(&a, &b);
        // Exact instruction accounting across the whole grid.
        let mut total = 0u64;
        for cta in 0..ctas {
            for warp in 0..8 {
                total += drain(&wl, 0, cta, warp)
                    .iter()
                    .map(Op::warp_instrs)
                    .sum::<u64>();
            }
        }
        assert_eq!(total, wl.approx_warp_instrs());
    }
}

/// Ops are well-formed: batch sizes positive, transaction counts in
/// range, stores/atomics flagged consistently.
#[test]
fn ops_are_well_formed() {
    let mut rng = Rng64::seed_from_u64(0x7ace_0002);
    for _ in 0..cases(48) {
        let spec = arb_spec(&mut rng);
        let seed = rng.gen_range(0, 10_000);
        let wl = Workload::new("p", seed, vec![Kernel::new("k", 2, 256, spec)]);
        for op in drain(&wl, 0, 0, 0) {
            match op {
                Op::Compute { n } => assert!(n >= 1),
                Op::Load(m) | Op::Store(m) | Op::Atomic(m) => {
                    assert!((1..=32).contains(&m.txns));
                    if m.txns > 1 {
                        assert!(m.txn_stride_lines >= 1);
                    }
                }
            }
        }
    }
}

/// The binary trace format round-trips arbitrary workloads exactly.
#[test]
fn trace_roundtrip_is_lossless() {
    let mut rng = Rng64::seed_from_u64(0x7ace_0003);
    for _ in 0..cases(48) {
        let spec = arb_spec(&mut rng);
        let seed = rng.gen_range(0, 10_000);
        let ctas = rng.gen_range(1, 6) as u32;
        let wl = Workload::new("rt", seed, vec![Kernel::new("k", ctas, 128, spec)]);
        let mut bytes = Vec::new();
        write_trace(&wl, &mut bytes).expect("in-memory write");
        let traced = TracedWorkload::read(&bytes[..]).expect("own trace parses");
        assert_eq!(traced.n_kernels(), 1);
        assert_eq!(traced.grid(0), (ctas, 128));
        assert_eq!(traced.total_warp_instrs(), wl.approx_warp_instrs());
        for cta in 0..ctas {
            for warp in 0..4 {
                let orig = drain(&wl, 0, cta, warp);
                let mut s = traced.warp_stream(0, cta, warp);
                let replay: Vec<Op> = std::iter::from_fn(move || s.next_op()).collect();
                assert_eq!(&orig, &replay);
            }
        }
    }
}
