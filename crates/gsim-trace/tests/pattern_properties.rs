//! Property-based tests on the workload substrate: every spec, however
//! configured, must yield deterministic, well-formed, correctly counted
//! streams that survive a trace-file round trip.

use gsim_trace::{
    write_trace, Kernel, Op, PatternKind, PatternSpec, TracedWorkload, WarpStream, Workload,
    WorkloadModel,
};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = PatternKind> {
    prop_oneof![
        (1u32..4).prop_map(|passes| PatternKind::GlobalSweep { passes }),
        Just(PatternKind::Streaming),
        Just(PatternKind::PointerChase),
        (1u64..8, 2u32..16).prop_map(|(tile_lines, reuses)| PatternKind::Tiled {
            tile_lines,
            reuses
        }),
        proptest::collection::vec((0.05f64..1.0, 0.01f64..4.0), 1..4)
            .prop_map(|levels| PatternKind::WorkingSetMix { levels }),
    ]
}

prop_compose! {
    fn arb_spec()(
        kind in arb_kind(),
        footprint in 16u64..5000,
        mem_ops in 1u32..40,
        cpm in 0.0f64..4.0,
        write_frac in 0.0f64..0.6,
        divergence in 1u8..8,
        hot in proptest::option::of((0.01f64..0.3, 1u64..32)),
        tail in 0u32..100,
    ) -> PatternSpec {
        let mut spec = PatternSpec::new(kind, footprint)
            .mem_ops_per_warp(mem_ops)
            .compute_per_mem(cpm)
            .write_frac(write_frac)
            .divergence(divergence)
            .tail_compute(tail);
        if let Some((prob, lines)) = hot {
            spec = spec.shared_hot(prob, lines);
        }
        spec
    }
}

fn drain(wl: &Workload, kernel: usize, cta: u32, warp: u32) -> Vec<Op> {
    let mut s = WorkloadModel::warp_stream(wl, kernel, cta, warp);
    std::iter::from_fn(move || s.next_op()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Streams are deterministic and the instruction estimate is exact.
    #[test]
    fn streams_are_deterministic_and_counted(
        spec in arb_spec(),
        seed in 0u64..10_000,
        ctas in 1u32..12,
    ) {
        let wl = Workload::new("p", seed, vec![Kernel::new("k", ctas, 256, spec)]);
        let a = drain(&wl, 0, 0, 0);
        let b = drain(&wl, 0, 0, 0);
        prop_assert_eq!(&a, &b);
        // Exact instruction accounting across the whole grid.
        let mut total = 0u64;
        for cta in 0..ctas {
            for warp in 0..8 {
                total += drain(&wl, 0, cta, warp).iter().map(Op::warp_instrs).sum::<u64>();
            }
        }
        prop_assert_eq!(total, wl.approx_warp_instrs());
    }

    /// Ops are well-formed: batch sizes positive, transaction counts in
    /// range, stores/atomics flagged consistently.
    #[test]
    fn ops_are_well_formed(spec in arb_spec(), seed in 0u64..10_000) {
        let wl = Workload::new("p", seed, vec![Kernel::new("k", 2, 256, spec)]);
        for op in drain(&wl, 0, 0, 0) {
            match op {
                Op::Compute { n } => prop_assert!(n >= 1),
                Op::Load(m) | Op::Store(m) | Op::Atomic(m) => {
                    prop_assert!((1..=32).contains(&m.txns));
                    if m.txns > 1 {
                        prop_assert!(m.txn_stride_lines >= 1);
                    }
                }
            }
        }
    }

    /// The binary trace format round-trips arbitrary workloads exactly.
    #[test]
    fn trace_roundtrip_is_lossless(
        spec in arb_spec(),
        seed in 0u64..10_000,
        ctas in 1u32..6,
    ) {
        let wl = Workload::new("rt", seed, vec![Kernel::new("k", ctas, 128, spec)]);
        let mut bytes = Vec::new();
        write_trace(&wl, &mut bytes).expect("in-memory write");
        let traced = TracedWorkload::read(&bytes[..]).expect("own trace parses");
        prop_assert_eq!(traced.n_kernels(), 1);
        prop_assert_eq!(traced.grid(0), (ctas, 128));
        prop_assert_eq!(traced.total_warp_instrs(), wl.approx_warp_instrs());
        for cta in 0..ctas {
            for warp in 0..4 {
                let orig = drain(&wl, 0, cta, warp);
                let mut s = traced.warp_stream(0, cta, warp);
                let replay: Vec<Op> = std::iter::from_fn(move || s.next_op()).collect();
                prop_assert_eq!(&orig, &replay);
            }
        }
    }
}
