//! Quickstart: predict 128-SM GPU performance from 8- and 16-SM scale
//! models, without ever simulating the 128-SM target.
//!
//! ```sh
//! cargo run --release --example quickstart [benchmark]
//! ```
//!
//! This walks the paper's Figure 3 workflow by hand:
//! 1. simulate the workload on the two scale models (detailed timing);
//! 2. collect its miss-rate curve (fast functional simulation);
//! 3. feed both into the scale-model predictor;
//! 4. (for demonstration only) simulate the target to report the error.

use gpu_scale_model::core::{ScaleModelInputs, ScaleModelPredictor, ScalingPredictor};
use gpu_scale_model::mem::mrc::MissRateCurve;
use gpu_scale_model::sim::{collect_mrc, GpuConfig, Simulator};
use gpu_scale_model::trace::suite::strong_benchmark;
use gpu_scale_model::trace::MemScale;

fn main() {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "dct".to_string());
    let scale = MemScale::default();
    let bench = strong_benchmark(&abbr, scale)
        .unwrap_or_else(|| panic!("unknown benchmark {abbr}; try dct, bfs, pf, ..."));
    println!(
        "workload: {} ({}, {} MB footprint, expected {})",
        bench.full_name,
        bench.origin,
        bench.workload.footprint_mb_paper(),
        bench.expected
    );

    // 1. Scale-model performance profiles (Section V.B).
    let sizes = [8u32, 16, 32, 64, 128];
    let configs: Vec<GpuConfig> = sizes
        .iter()
        .map(|&s| GpuConfig::paper_target(s, scale))
        .collect();
    let sm8 = Simulator::new(configs[0].clone(), &bench.workload).run();
    let sm16 = Simulator::new(configs[1].clone(), &bench.workload).run();
    println!(
        "scale models:  8-SM IPC {:8.1}   16-SM IPC {:8.1}   f_mem(16) {:.2}",
        sm8.sustained_ipc(),
        sm16.sustained_ipc(),
        sm16.f_mem()
    );

    // 2. Miss-rate curve from functional simulation (Section V.A).
    let curve: MissRateCurve = collect_mrc(&bench.workload, &configs);
    println!("miss-rate curve (model units): {curve}");

    // 3. The scale-model prediction (Section V.C).
    let inputs = ScaleModelInputs::new(8, sm8.sustained_ipc(), 16, sm16.sustained_ipc())
        .with_mrc(sizes.iter().zip(curve.points()).map(|(&s, p)| (s, p.mpki)))
        .with_f_mem(sm16.f_mem());
    let predictor = ScaleModelPredictor::new(inputs).expect("valid inputs");
    println!(
        "correction factor C = {:.3}; cliff detected at: {:?} SMs",
        predictor.correction_factor(),
        predictor.cliff_at()
    );
    let predicted = predictor.predict(128.0);
    println!("predicted 128-SM IPC: {predicted:8.1}");

    // 4. Ground truth, for demonstration.
    let real = Simulator::new(configs[4].clone(), &bench.workload)
        .run()
        .sustained_ipc();
    println!(
        "measured  128-SM IPC: {real:8.1}   (prediction error {:.1}%)",
        gpu_scale_model::core::percent_error(predicted, real)
    );
}
