//! Weak scaling: predict target performance for inputs that grow with the
//! system, and measure the simulation-time speedup of scale-model
//! simulation (the paper's Figures 6 and 7 for one benchmark).
//!
//! ```sh
//! cargo run --release --example weak_scaling_speedup [benchmark]
//! ```

use gpu_scale_model::core::experiment::WeakScalingExperiment;
use gpu_scale_model::trace::weak::weak_benchmark;
use gpu_scale_model::trace::MemScale;

fn main() {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "va".to_string());
    let scale = MemScale::default();
    let bench = weak_benchmark(&abbr, scale)
        .unwrap_or_else(|| panic!("unknown weak benchmark {abbr}; try bfs, bs, btree, as, bp, va"));

    println!(
        "weak-scaling benchmark {abbr} (expected {}):",
        bench.expected
    );
    for (row, r) in bench.rows.iter().enumerate() {
        println!(
            "  input {}: {:>7} CTAs (paper), {:6.1} MB — for the {}-SM system",
            row,
            r.ctas_paper,
            r.footprint_mb,
            gpu_scale_model::trace::weak::WEAK_SM_SIZES[row]
        );
    }

    let out = WeakScalingExperiment::new(scale)
        .run_benchmark(&bench)
        .expect("pipeline runs");

    println!("\nmeasured (each size runs its own input):");
    for m in &out.outcome.measured {
        println!(
            "  {:>3} SMs: IPC {:8.1}   simulated in {:6.2} s",
            m.size, m.ipc, m.sim_seconds
        );
    }

    println!("\npredictions from the 8/16-SM scale models (no miss-rate curve needed):");
    for method in [
        "scale-model",
        "proportional",
        "linear",
        "power-law",
        "logarithmic",
    ] {
        if let Some(mo) = out.outcome.method(method) {
            let s: Vec<String> = mo
                .by_target
                .iter()
                .map(|p| format!("{}SM {:.1} ({:.1}%)", p.target, p.predicted, p.error_pct))
                .collect();
            println!("  {method:>12}: {}", s.join("  "));
        }
    }

    println!("\nsimulation-time speedup vs simulating both scale models:");
    for (target, speedup) in &out.speedups {
        println!("  {target:>3}-SM target: {speedup:.2}x");
    }
}
