//! Miss-rate-curve exploration: compare the MRC engines (exact tree-based
//! stack distances, SHARDS sampling, per-capacity cache replay) on a
//! workload's address stream and show cliff detection at work.
//!
//! ```sh
//! cargo run --release --example mrc_explorer [benchmark]
//! ```

use std::time::Instant;

use gpu_scale_model::core::{detect_cliff, SizedMrc};
use gpu_scale_model::mem::mrc::{DistanceEngine, MissRateCurve, ShardsStack, TreeStack};
use gpu_scale_model::sim::{collect_mrc, GpuConfig};
use gpu_scale_model::trace::suite::strong_benchmark;
use gpu_scale_model::trace::{MemScale, WarpStream};

fn main() {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "dct".to_string());
    let scale = MemScale::default();
    let bench =
        strong_benchmark(&abbr, scale).unwrap_or_else(|| panic!("unknown benchmark {abbr}"));
    let sizes = [8u32, 16, 32, 64, 128];
    let configs: Vec<GpuConfig> = sizes
        .iter()
        .map(|&s| GpuConfig::paper_target(s, scale))
        .collect();

    // Gather the raw (pre-L1) line-address stream of the first kernels.
    let wl = &bench.workload;
    let mut lines: Vec<u64> = Vec::new();
    for (kidx, kernel) in wl.kernels().iter().enumerate() {
        for cta in 0..kernel.n_ctas().min(512) {
            for warp in 0..kernel.warps_per_cta() {
                let mut s = kernel.warp_stream(wl, kidx, cta, warp);
                while let Some(op) = s.next_op() {
                    if let Some(m) = op.mem() {
                        lines.extend(m.lines());
                    }
                }
            }
        }
    }
    println!("{abbr}: analysing {} line accesses", lines.len());

    // Exact single-pass stack distances (fully-associative model).
    let t0 = Instant::now();
    let mut exact = TreeStack::with_capacity(lines.len());
    exact.record_all(lines.iter().copied());
    let hist = exact.finish();
    let exact_time = t0.elapsed();

    // SHARDS sampling at 10%.
    let t0 = Instant::now();
    let mut shards = ShardsStack::new(0.1);
    shards.record_all(lines.iter().copied());
    let sampled = shards.finish();
    let shards_time = t0.elapsed();

    let caps: Vec<u64> = configs.iter().map(|c| c.llc_bytes_total).collect();
    let exact_mrc = MissRateCurve::from_histogram(&hist, &caps, lines.len() as u64 * 32, 128);
    let shards_mrc = MissRateCurve::from_histogram(&sampled, &caps, lines.len() as u64 * 32, 128);

    // Full functional replay through set-associative sliced LLCs + L1s.
    let t0 = Instant::now();
    let replay_mrc = collect_mrc(wl, &configs);
    let replay_time = t0.elapsed();

    println!(
        "\n{:>12} {:>12} {:>12} {:>12}",
        "LLC (paper)", "tree-exact", "SHARDS 10%", "replay+L1"
    );
    for (i, cfg) in configs.iter().enumerate() {
        println!(
            "{:>9} MB {:>12.2} {:>12.2} {:>12.2}",
            cfg.llc_paper_bytes() / (1024 * 1024),
            exact_mrc.points()[i].mpki,
            shards_mrc.points()[i].mpki,
            replay_mrc.points()[i].mpki,
        );
    }
    println!(
        "\nanalysis time: exact {exact_time:?}, SHARDS {shards_time:?}, replay {replay_time:?}"
    );

    let sized = SizedMrc::new(
        sizes
            .iter()
            .zip(replay_mrc.points())
            .map(|(&s, p)| (s, p.mpki)),
    );
    match detect_cliff(&sized) {
        Some(i) => println!(
            "cliff detected between {} and {} SMs — Eq. (3) applies there",
            sized.points()[i].0,
            sized.points()[i + 1].0
        ),
        None => println!("no cliff: the whole range is pre-cliff (Eq. 2)"),
    }
}
