//! Multi-chiplet GPUs: predict 16-chiplet performance from 4- and
//! 8-chiplet scale models (the paper's Section VII.D case study), run
//! in parallel on the gsim-runner worker pool — one job per benchmark.
//!
//! ```sh
//! cargo run --release --example chiplet_scaling [benchmark...]
//! ```

use gpu_scale_model::core::experiment::McmExperiment;
use gpu_scale_model::runner::{ProgressReporter, Runner, RunnerConfig};
use gpu_scale_model::sim::ChipletConfig;
use gpu_scale_model::trace::weak::weak_benchmark;
use gpu_scale_model::trace::MemScale;

fn main() {
    let mut abbrs: Vec<String> = std::env::args().skip(1).collect();
    if abbrs.is_empty() {
        abbrs.push("va".to_string());
    }
    let scale = MemScale::default();
    let suite: Vec<_> = abbrs
        .iter()
        .map(|abbr| {
            weak_benchmark(abbr, scale).unwrap_or_else(|| panic!("unknown weak benchmark {abbr}"))
        })
        .collect();

    let mcm16 = ChipletConfig::paper_mcm(16, scale);
    println!(
        "target: {} chiplets x {} SMs = {} SMs at {:.1} GHz, {} MB LLC/chiplet,\n\
         {:.0} GB/s inter-chiplet per chiplet, first-touch pages",
        mcm16.n_chiplets,
        mcm16.chiplet.n_sms,
        mcm16.total_sms(),
        mcm16.chiplet.sm_clock_ghz,
        scale.to_paper_bytes(mcm16.chiplet.llc_bytes_total) / (1024 * 1024),
        mcm16.interchiplet_gbs_per_chiplet,
    );

    // One MCM pipeline job per benchmark; excluded benchmarks simply
    // produce no outcome.
    let runner = Runner::new(RunnerConfig::default()).with_sink(ProgressReporter::new());
    let run = McmExperiment::new(scale).run_suite_on(&suite, "mcm-example", &runner);
    for failure in &run.failures {
        eprintln!("failed: {failure}");
    }
    if run.outcomes.is_empty() {
        println!("\nall requested benchmarks are excluded from the MCM study");
    }

    for out in &run.outcomes {
        println!("\n=== {} ===", out.outcome.abbr);
        println!("measured:");
        for m in &out.outcome.measured {
            println!(
                "  {:>2} chiplets ({:>4} SMs): IPC {:8.1}  f_mem {:.2}  [{:.2} s sim]",
                m.size,
                m.size * 64,
                m.ipc,
                m.f_mem,
                m.sim_seconds
            );
        }

        println!("16-chiplet predictions from the 4/8-chiplet scale models:");
        for method in [
            "scale-model",
            "proportional",
            "linear",
            "power-law",
            "logarithmic",
        ] {
            if let Some(p) = out.outcome.method(method).and_then(|mo| mo.at(16)) {
                println!(
                    "  {method:>12}: {:8.1}  (error {:.1}%)",
                    p.predicted, p.error_pct
                );
            }
        }
        if let Some((_, s)) = out.speedups.first() {
            println!("simulation-time speedup vs both scale models: {s:.2}x");
        }
    }
    if !run.is_complete() {
        std::process::exit(1);
    }
}
