//! Strong-scaling sweep: simulate one benchmark at every system size and
//! compare all five prediction methods against the measured curve — one
//! panel of the paper's Figure 5.
//!
//! ```sh
//! cargo run --release --example strong_scaling_sweep [benchmark]
//! ```

use gpu_scale_model::core::experiment::StrongScalingExperiment;
use gpu_scale_model::core::report::TextTable;
use gpu_scale_model::trace::suite::strong_benchmark;
use gpu_scale_model::trace::MemScale;

fn main() {
    let abbr = std::env::args().nth(1).unwrap_or_else(|| "bfs".to_string());
    let scale = MemScale::default();
    let bench = strong_benchmark(&abbr, scale)
        .unwrap_or_else(|| panic!("unknown benchmark {abbr}"));
    let outcome = StrongScalingExperiment::new(scale)
        .run_benchmark(&bench)
        .expect("pipeline runs");

    println!(
        "{} — expected {}, measured {}; cliff at {:?}",
        bench.full_name, outcome.expected, outcome.measured_class, outcome.cliff_at
    );
    if let Some(mrc) = &outcome.mrc {
        println!("miss-rate curve by system size:");
        for &(size, mpki) in mrc.points() {
            println!("  {size:>3} SMs: {mpki:6.2} MPKI");
        }
    }

    let mut t = TextTable::new(vec![
        "#SMs", "real IPC", "f_mem", "f_idle", "scale-model", "proportional", "linear",
        "power-law", "logarithmic",
    ]);
    for m in &outcome.measured {
        let mut row = vec![
            m.size.to_string(),
            format!("{:.1}", m.ipc),
            format!("{:.2}", m.f_mem),
            format!("{:.2}", m.f_idle),
        ];
        for method in ["scale-model", "proportional", "linear", "power-law", "logarithmic"] {
            row.push(
                outcome
                    .method(method)
                    .and_then(|mo| mo.at(m.size))
                    .map(|p| format!("{:.1}", p.predicted))
                    .unwrap_or_else(|| "-".into()),
            );
        }
        t.row(row);
    }
    println!("{}", t.render());

    println!("prediction error at each target:");
    for method in ["scale-model", "proportional", "linear", "power-law", "logarithmic"] {
        let errs: Vec<String> = outcome
            .method(method)
            .map(|mo| {
                mo.by_target
                    .iter()
                    .map(|p| format!("{}SM {:.1}%", p.target, p.error_pct))
                    .collect()
            })
            .unwrap_or_default();
        println!("  {method:>12}: {}", errs.join("  "));
    }
}
