//! Strong-scaling sweep: simulate benchmarks at every system size and
//! compare all five prediction methods against the measured curve —
//! panels of the paper's Figure 5, run in parallel on the gsim-runner
//! worker pool (one job per benchmark).
//!
//! ```sh
//! cargo run --release --example strong_scaling_sweep [benchmark...]
//! ```

use gpu_scale_model::core::experiment::StrongScalingExperiment;
use gpu_scale_model::core::report::TextTable;
use gpu_scale_model::runner::{ProgressReporter, Runner, RunnerConfig};
use gpu_scale_model::trace::suite::strong_benchmark;
use gpu_scale_model::trace::MemScale;

fn main() {
    let mut abbrs: Vec<String> = std::env::args().skip(1).collect();
    if abbrs.is_empty() {
        abbrs.push("bfs".to_string());
    }
    let scale = MemScale::default();
    let suite: Vec<_> = abbrs
        .iter()
        .map(|abbr| {
            strong_benchmark(abbr, scale).unwrap_or_else(|| panic!("unknown benchmark {abbr}"))
        })
        .collect();

    // One pipeline job per benchmark; outcomes come back in suite order
    // regardless of which worker finishes first.
    let runner = Runner::new(RunnerConfig::default()).with_sink(ProgressReporter::new());
    let run = StrongScalingExperiment::new(scale).run_suite_on(&suite, "strong-example", &runner);
    for failure in &run.failures {
        eprintln!("failed: {failure}");
    }

    for outcome in &run.outcomes {
        // Outcomes arrive in suite order, but a failed benchmark leaves a
        // gap — look the workload back up by abbreviation.
        let bench = suite
            .iter()
            .find(|b| b.abbr == outcome.abbr)
            .expect("outcome comes from the suite");
        println!(
            "\n{} — expected {}, measured {}; cliff at {:?}",
            bench.full_name, outcome.expected, outcome.measured_class, outcome.cliff_at
        );
        if let Some(mrc) = &outcome.mrc {
            println!("miss-rate curve by system size:");
            for &(size, mpki) in mrc.points() {
                println!("  {size:>3} SMs: {mpki:6.2} MPKI");
            }
        }

        let mut t = TextTable::new(vec![
            "#SMs",
            "real IPC",
            "f_mem",
            "f_idle",
            "scale-model",
            "proportional",
            "linear",
            "power-law",
            "logarithmic",
        ]);
        for m in &outcome.measured {
            let mut row = vec![
                m.size.to_string(),
                format!("{:.1}", m.ipc),
                format!("{:.2}", m.f_mem),
                format!("{:.2}", m.f_idle),
            ];
            for method in [
                "scale-model",
                "proportional",
                "linear",
                "power-law",
                "logarithmic",
            ] {
                row.push(
                    outcome
                        .method(method)
                        .and_then(|mo| mo.at(m.size))
                        .map(|p| format!("{:.1}", p.predicted))
                        .unwrap_or_else(|| "-".into()),
                );
            }
            t.row(row);
        }
        println!("{}", t.render());

        println!("prediction error at each target:");
        for method in [
            "scale-model",
            "proportional",
            "linear",
            "power-law",
            "logarithmic",
        ] {
            let errs: Vec<String> = outcome
                .method(method)
                .map(|mo| {
                    mo.by_target
                        .iter()
                        .map(|p| format!("{}SM {:.1}%", p.target, p.error_pct))
                        .collect()
                })
                .unwrap_or_default();
            println!("  {method:>12}: {}", errs.join("  "));
        }
    }
    if !run.is_complete() {
        std::process::exit(1);
    }
}
