#!/usr/bin/env bash
# Trace-ingestion smoke test (DESIGN.md §12), driven by `make trace-smoke`
# and the CI trace-smoke job: record → ingest → info → serve, then a
# predict-from-trace must return the same prediction as the synthetic
# generator path bit for bit, without scheduling any new timing
# simulation.
set -euo pipefail

GSIM=${GSIM:-target/release/gsim}
WORK=$(mktemp -d)
cleanup() {
    [ -n "${SERVER:-}" ] && kill "$SERVER" 2>/dev/null || true
    [ -n "${HOLD:-}" ] && kill "$HOLD" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# --- 1. The CLI store workflow.
"$GSIM" trace record gemm -o "$WORK/gemm.gstr"
"$GSIM" trace ingest "$WORK/gemm.gstr" --store "$WORK/store"
"$GSIM" trace info "$WORK/gemm.gstr" --mrc
"$GSIM" trace ls --store "$WORK/store"
REF=$("$GSIM" trace ls --store "$WORK/store" | awk '{print $1}')
[ "${#REF}" -eq 16 ] || { echo "bad trace ref: $REF"; exit 1; }

# Broken inputs exit with their distinct codes.
echo "definitely not a trace" > "$WORK/junk.gstr"
set +e
"$GSIM" trace info "$WORK/junk.gstr" 2>/dev/null
CODE=$?
set -e
[ "$CODE" -eq 3 ] || { echo "expected exit 3 for junk, got $CODE"; exit 1; }

# --- 2. The service: synthetic predict, trace upload, trace_ref predict.
mkfifo "$WORK/stdin"
sleep 300 > "$WORK/stdin" &
HOLD=$!
"$GSIM" serve --addr 127.0.0.1:0 --cache-dir "$WORK/cache" \
    --store "$WORK/servestore" < "$WORK/stdin" > "$WORK/serve.log" 2>&1 &
SERVER=$!
for _ in $(seq 1 50); do
    grep -q "listening on" "$WORK/serve.log" && break
    sleep 0.2
done
ADDR=$(grep -oE '[0-9.]+:[0-9]+' "$WORK/serve.log" | head -1)
echo "server at $ADDR"

# Pinned to the full path: this smoke is about the timing-simulation
# stage cache, which the functional-first fast path would bypass.
curl -sf -X POST "http://$ADDR/v1/predict" \
    -d '{"workload": "gemm", "targets": [32, 64], "path": "full"}' -o "$WORK/synthetic.json"
SIMS=$(curl -sf "http://$ADDR/metrics" |
    python3 -c 'import json,sys; print(json.load(sys.stdin)["timing_sims_started"])')
echo "timing sims after synthetic predict: $SIMS"

curl -sf -X POST "http://$ADDR/v1/traces" \
    --data-binary @"$WORK/gemm.gstr" -o "$WORK/upload.json"
python3 - "$WORK/upload.json" "$REF" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["ref"] == sys.argv[2], (doc, sys.argv[2])
assert doc["deduplicated"] is False, doc
print("uploaded:", doc["ref"])
EOF

curl -sf -X POST "http://$ADDR/v1/predict" \
    -d "{\"trace_ref\": \"$REF\", \"targets\": [32, 64], \"path\": \"full\"}" -o "$WORK/traced.json"
curl -sf "http://$ADDR/metrics" -o "$WORK/metrics.json"
python3 - "$WORK/synthetic.json" "$WORK/traced.json" "$WORK/metrics.json" "$SIMS" <<'EOF'
import json, sys
syn = json.load(open(sys.argv[1]))
traced = json.load(open(sys.argv[2]))
m = json.load(open(sys.argv[3]))
sims_before = int(sys.argv[4])
for key in ("scale_models", "mrc", "correction_factor", "cliff_at", "predictions"):
    assert syn[key] == traced[key], (key, syn[key], traced[key])
assert m["timing_sims_started"] == sims_before, m
assert m["predict"]["from_trace"] == 1, m["predict"]
assert m["predict"]["stage_obs_hits"] >= 1, m["predict"]
assert m["predict"]["stage_mrc_hits"] >= 1, m["predict"]
assert m["trace_store"]["ingests"] == 1, m["trace_store"]
print("prediction bit-identical to the synthetic path; zero extra timing sims")
EOF

curl -sf -X POST "http://$ADDR/v1/shutdown" > /dev/null
wait "$SERVER"
SERVER=
echo "trace smoke OK"
