#!/usr/bin/env bash
# Chaos smoke test (DESIGN.md §13), driven by `make chaos-smoke` and the
# CI chaos-smoke job: boot `gsim serve` with a deterministic fault plan
# and a deliberately tiny predict budget, drive it at roughly twice
# saturation with the closed-loop `serve_bench` generator, and hold the
# overload contract:
#
#   - every answered request is 200/400/404/429/503/504 — no 500s from
#     overload or injected faults, no hangs, no truncation other than the
#     injected disconnects;
#   - every 429 carries a Retry-After header (serve_bench exits 1 itself
#     if one is missing);
#   - shutdown under load drains within the grace period;
#   - BENCH_serve.json is schema-valid and lands at the repo root.
set -euo pipefail

GSIM=${GSIM:-target/release/gsim}
BENCH=${BENCH:-target/release/serve_bench}
OUT=${OUT:-BENCH_serve.json}
# Deterministic, moderate chaos: enough injected delay/disconnect/panic
# to exercise every recovery path, not so much that nothing completes.
FAULT_PLAN="seed=42,http_delay_p=0.05,http_delay_ms=20,http_disconnect_p=0.02,job_panic_p=0.05,store_read_delay_p=0.1,store_read_delay_ms=5"

WORK=$(mktemp -d)
cleanup() {
    [ -n "${SERVER:-}" ] && kill "$SERVER" 2>/dev/null || true
    [ -n "${HOLD:-}" ] && kill "$HOLD" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

# Hold stdin open with a fifo: the server shuts down on stdin EOF.
mkfifo "$WORK/stdin"
sleep 300 > "$WORK/stdin" &
HOLD=$!
# --max-inflight-predicts 2 with 16 closed-loop clients is ~8x the heavy
# budget, comfortably past 2x saturation for the whole run.
"$GSIM" serve --addr 127.0.0.1:0 --cache-dir "$WORK/cache" \
    --store "$WORK/store" --runner-threads 2 \
    --max-inflight-predicts 2 --degrade-threshold 2 \
    --drain-grace-ms 5000 --fault-plan "$FAULT_PLAN" \
    < "$WORK/stdin" > "$WORK/serve.log" 2>&1 &
SERVER=$!
for _ in $(seq 1 50); do
    grep -q "listening on" "$WORK/serve.log" && break
    sleep 0.2
done
ADDR=$(grep -oE '[0-9.]+:[0-9]+' "$WORK/serve.log" | head -1)
grep -q "fault injection ACTIVE" "$WORK/serve.log" || {
    echo "fault plan not installed"; cat "$WORK/serve.log"; exit 1
}
echo "server at $ADDR under plan: $FAULT_PLAN"

# serve_bench exits non-zero on a missing Retry-After, so the contract
# check runs even before the validator below.
"$BENCH" --addr "$ADDR" --duration-secs "${DURATION:-10}" \
    --concurrency 16 --seed 42 --deadline-ms 30000 -o "$OUT"

# Shutdown under whatever load is left must drain within the grace.
START=$(date +%s)
curl -sf -X POST "http://$ADDR/v1/shutdown" > /dev/null
wait "$SERVER"
SERVER=
ELAPSED=$(( $(date +%s) - START ))
[ "$ELAPSED" -le 7 ] || { echo "drain took ${ELAPSED}s (> grace + slack)"; exit 1; }
echo "drained in ${ELAPSED}s"

python3 - "$OUT" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "gsim-serve-bench-v1", doc["schema"]
assert doc["requests"] > 0 and doc["answered"] > 0, doc
by_status = {int(k): v for k, v in doc["by_status"].items()}
allowed = {200, 400, 404, 429, 503, 504}
bad = {s: n for s, n in by_status.items() if s not in allowed}
assert not bad, f"disallowed statuses under chaos: {bad}"
assert 500 not in by_status, "a 500 leaked through the overload path"
assert doc["retry_after_missing"] == 0, doc
assert doc["by_status"].get("429", 0) > 0, \
    "2x saturation never shed -- admission gate not engaged?"
assert doc["rps"] > 0 and doc["p99_us"] > 0, doc
print(f"chaos OK: {doc['requests']} requests, {doc['rps']:.1f} rps sustained, "
      f"p99 {doc['p99_us']/1000:.1f}ms, shed rate {doc['shed_rate']:.2%}, "
      f"{doc['transport_errors']} injected disconnects")
EOF
echo "chaos smoke OK"
