# Convenience targets; everything is plain cargo underneath.

.PHONY: build test lint bench bench-smoke trace-smoke chaos-smoke multigpu-smoke

build:
	cargo build --release

test:
	cargo test -q --workspace

lint:
	cargo fmt --all --check
	cargo clippy --workspace --all-targets -- -D warnings

# Full micro-benchmark run; refreshes BENCH_simulator.json and
# BENCH_mrc_engines.json at the repo root.
bench:
	cargo bench -p gsim-bench --bench simulator
	cargo bench -p gsim-bench --bench mrc_engines

# Smoke-test-sized bench run (seconds, not minutes): verifies the harness
# and the JSON schema, not the timings. Used by CI.
bench-smoke:
	GSIM_BENCH_FAST=1 cargo bench -p gsim-bench --bench simulator
	GSIM_BENCH_FAST=1 cargo bench -p gsim-bench --bench mrc_engines

# End-to-end trace smoke (DESIGN.md §12): record → ingest → info → serve,
# then predict-from-trace must match the synthetic prediction bit for bit
# without new timing simulations. Used by CI.
trace-smoke:
	cargo build --release -p gsim-bench --bin gsim
	bash scripts/trace_smoke.sh

# Overload/fault chaos smoke (DESIGN.md §13): boot the service with a
# deterministic fault plan and a tiny predict budget, drive it past
# saturation with serve_bench, and verify only 200/400/404/429/503/504
# come back, every 429 carries Retry-After, and shutdown drains within
# the grace period. Refreshes BENCH_serve.json. Used by CI.
chaos-smoke:
	cargo build --release -p gsim-bench --bin gsim --bin serve_bench
	bash scripts/chaos_smoke.sh

# Multi-GPU system-model smoke (DESIGN.md §16): 2-GPU determinism across
# sim_threads, a placement-policy sweep, and the scale-model validation
# experiment in smoke mode. Used by CI.
multigpu-smoke:
	cargo build --release -p gsim-bench --bin gsim
	target/release/gsim multigpu --gpus 2 --sms 8 --scale 64 \
		--sim-threads 2 --assert-determinism
	for p in first-touch interleave replicate; do \
		target/release/gsim multigpu --gpus 4 --sms 8 --scale 64 \
			--placement $$p | grep "fabric bytes" || exit 1; \
	done
	target/release/gsim multigpu --validate --smoke --sms 8 --scale 64 \
		| grep "scale-model"
