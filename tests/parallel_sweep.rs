//! End-to-end check of the gsim-runner wiring through the umbrella crate:
//! a strong-scaling suite run on one worker thread and on four must
//! aggregate to identical reports, and an injected panic must surface as
//! a per-job failure without aborting the sweep.

use gpu_scale_model::core::experiment::StrongScalingExperiment;
use gpu_scale_model::core::parallel::collect;
use gpu_scale_model::runner::{Runner, RunnerConfig};
use gpu_scale_model::trace::suite::strong_suite;
use gpu_scale_model::trace::MemScale;

fn runner(threads: usize) -> Runner {
    Runner::new(RunnerConfig {
        threads,
        ..RunnerConfig::default()
    })
}

#[test]
fn strong_sweep_is_thread_count_invariant() {
    // Coarse memory divisor keeps the pipelines fast; two benchmarks are
    // enough to have jobs genuinely interleave on four workers.
    let scale = MemScale::new(32);
    let suite: Vec<_> = strong_suite(scale).into_iter().take(2).collect();
    let exp = StrongScalingExperiment::new(scale);

    let serial = exp.run_suite_on(&suite, "serial", &runner(1));
    let mut parallel = exp.run_suite_on(&suite, "parallel", &runner(4));
    assert!(serial.is_complete(), "failures: {:?}", serial.failures);
    assert!(parallel.is_complete(), "failures: {:?}", parallel.failures);
    assert_eq!(parallel.outcomes.len(), serial.outcomes.len());

    for (p, s) in parallel.outcomes.iter_mut().zip(&serial.outcomes) {
        // Wall-clock is the only field allowed to differ between runs.
        for (mp, ms) in p.measured.iter_mut().zip(&s.measured) {
            mp.sim_seconds = ms.sim_seconds;
        }
        assert_eq!(p, s);
    }
}

#[test]
fn injected_panic_is_a_per_job_failure() {
    let scale = MemScale::new(32);
    let suite: Vec<_> = strong_suite(scale).into_iter().take(2).collect();
    let exp = StrongScalingExperiment::new(scale);

    let mut jobs = exp.jobs(&suite);
    let victim = jobs[0].name().to_string();
    jobs[0] = gpu_scale_model::runner::Job::new(victim.clone(), || {
        panic!("injected failure for the integration test")
    });

    let run = collect(runner(4).run("faulty", jobs));
    assert_eq!(run.outcomes.len(), suite.len() - 1, "healthy jobs survive");
    assert_eq!(run.failures.len(), 1);
    assert_eq!(run.failures[0].abbr, victim);
    assert!(run.failures[0].reason.contains("injected failure"));
}
