//! End-to-end weak-scaling and multi-chiplet pipeline tests.

use gpu_scale_model::core::experiment::{McmExperiment, WeakScalingExperiment};
use gpu_scale_model::trace::weak::{weak_benchmark, weak_suite};
use gpu_scale_model::trace::MemScale;

fn scale() -> MemScale {
    MemScale::new(32)
}

#[test]
fn weak_linear_benchmark_predicts_tightly_without_an_mrc() {
    let bench = weak_benchmark("va", scale()).expect("va exists");
    let out = WeakScalingExperiment::new(scale())
        .run_benchmark(&bench)
        .expect("pipeline runs");
    assert!(out.outcome.mrc.is_none(), "weak scaling needs no MRC");
    let sm = out.outcome.method("scale-model").unwrap().at(128).unwrap();
    assert!(
        sm.error_pct < 12.0,
        "weak va scale-model error {}",
        sm.error_pct
    );
}

#[test]
fn weak_sub_linear_benchmark_beats_proportional() {
    let bench = weak_benchmark("bfs", scale()).expect("bfs exists");
    let out = WeakScalingExperiment::new(scale())
        .run_benchmark(&bench)
        .expect("pipeline runs");
    let err = |m: &str| out.outcome.method(m).unwrap().at(128).unwrap().error_pct;
    assert!(
        err("scale-model") < err("proportional"),
        "scale-model {:.1}% vs proportional {:.1}%",
        err("scale-model"),
        err("proportional")
    );
}

#[test]
fn weak_scaling_speedup_grows_with_target_size() {
    let bench = weak_benchmark("bp", scale()).expect("bp exists");
    let out = WeakScalingExperiment::new(scale())
        .run_benchmark(&bench)
        .expect("pipeline runs");
    let s: Vec<f64> = out.speedups.iter().map(|&(_, v)| v).collect();
    assert_eq!(out.speedups.len(), 3);
    assert!(
        s[0] < s[1] && s[1] < s[2],
        "speedup must grow with target size: {s:?}"
    );
    assert!(s[2] > 2.0, "128-SM speedup should be substantial: {s:?}");
}

#[test]
fn mcm_pipeline_predicts_16_chiplets_from_4_and_8() {
    let bench = weak_benchmark("va", scale()).expect("va exists");
    let out = McmExperiment::new(scale())
        .run_benchmark(&bench)
        .expect("pipeline runs")
        .expect("va participates in the MCM study");
    assert_eq!(out.outcome.measured.len(), 3);
    assert_eq!(
        out.outcome
            .measured
            .iter()
            .map(|m| m.size)
            .collect::<Vec<_>>(),
        vec![4, 8, 16]
    );
    let sm = out.outcome.method("scale-model").unwrap().at(16).unwrap();
    assert!(
        sm.error_pct < 15.0,
        "MCM scale-model error {} out of band",
        sm.error_pct
    );
    // Bigger chiplet counts must be faster in absolute terms.
    let ipc: Vec<f64> = out.outcome.measured.iter().map(|m| m.ipc).collect();
    assert!(ipc[0] < ipc[1] && ipc[1] < ipc[2], "IPC must grow: {ipc:?}");
}

#[test]
fn mcm_study_covers_exactly_the_papers_five_benchmarks() {
    let exp = McmExperiment::new(scale());
    let mut included = Vec::new();
    for b in weak_suite(scale()) {
        if b.mcm_rows().is_some() {
            included.push(b.abbr);
        } else {
            assert_eq!(b.abbr, "btree", "only btree is excluded");
            assert!(exp.run_benchmark(&b).unwrap().is_none());
        }
    }
    assert_eq!(included, vec!["bfs", "bs", "as", "bp", "va"]);
}
