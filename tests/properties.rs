//! Cross-crate randomized property tests on the invariants the
//! methodology relies on. Cases are generated with the in-tree
//! [`gsim_rng`] PRNG; the `ext-tests` feature multiplies the case count
//! for heavier offline soak runs.

use gpu_scale_model::core::{
    percent_error, LinearRegression, LogRegression, PowerLawRegression, Proportional,
    ScaleModelInputs, ScaleModelPredictor, ScalingPredictor, SizedMrc,
};
use gpu_scale_model::mem::mrc::{DistanceEngine, NaiveStack, TreeStack};
use gpu_scale_model::mem::{Cache, CacheGeometry};
use gpu_scale_model::sim::{GpuConfig, Simulator};
use gpu_scale_model::trace::{Kernel, MemScale, PatternKind, PatternSpec, Workload};
use gsim_rng::Rng64;

/// Per-property case count; `--features ext-tests` multiplies it 8x.
fn cases(default: usize) -> usize {
    if cfg!(feature = "ext-tests") {
        default * 8
    } else {
        default
    }
}

fn f64_in(rng: &mut Rng64, lo: f64, hi: f64) -> f64 {
    lo + rng.next_f64() * (hi - lo)
}

fn vec_u64(rng: &mut Rng64, max_value: u64, min_len: u64, max_len: u64) -> Vec<u64> {
    let len = rng.gen_range(min_len, max_len);
    (0..len).map(|_| rng.gen_range(0, max_value)).collect()
}

/// The tree-accelerated stack-distance engine is exactly equivalent to
/// the naive Mattson stack on arbitrary traces.
#[test]
fn tree_stack_equals_naive_stack() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0001);
    for _ in 0..cases(64) {
        let trace = vec_u64(&mut rng, 200, 1, 400);
        let caps = vec_u64(&mut rng, 300, 1, 8);
        let mut tree = TreeStack::with_capacity(16); // force compactions
        let mut naive = NaiveStack::new();
        tree.record_all(trace.iter().copied());
        naive.record_all(trace.iter().copied());
        let (ht, hn) = (tree.finish(), naive.finish());
        for c in caps {
            assert_eq!(ht.misses_at(c), hn.misses_at(c));
        }
    }
}

/// Misses are monotonically non-increasing in cache capacity.
#[test]
fn stack_distance_misses_are_monotone() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0002);
    for _ in 0..cases(64) {
        let trace = vec_u64(&mut rng, 500, 1, 500);
        let mut e = TreeStack::new();
        e.record_all(trace.iter().copied());
        let h = e.finish();
        let mut prev = f64::INFINITY;
        for c in [0u64, 1, 2, 4, 8, 16, 64, 256, 1024] {
            let m = h.misses_at(c);
            assert!(m <= prev);
            prev = m;
        }
    }
}

/// An LRU cache at least as large as the number of distinct lines takes
/// only cold misses.
#[test]
fn cache_with_capacity_for_everything_only_misses_cold() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0003);
    for _ in 0..cases(64) {
        let trace = vec_u64(&mut rng, 64, 1, 300);
        let distinct = trace.iter().collect::<std::collections::HashSet<_>>().len() as u64;
        let mut cache = Cache::new(CacheGeometry::from_sets(1, 64, 128));
        for &l in &trace {
            cache.access(l, false);
        }
        assert_eq!(cache.misses(), distinct);
    }
}

/// Proportional prediction and power-law prediction coincide when the
/// scale models scale exactly ideally.
#[test]
fn power_law_reduces_to_proportional_on_ideal_scaling() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0004);
    for _ in 0..cases(64) {
        let ipc = f64_in(&mut rng, 1.0, 10_000.0);
        let target = [32u32, 64, 128][rng.gen_range(0, 3) as usize];
        let prop_m = Proportional::fit(8, ipc, 16, 2.0 * ipc).unwrap();
        let power = PowerLawRegression::fit(8, ipc, 16, 2.0 * ipc).unwrap();
        let t = f64::from(target);
        assert!((prop_m.predict(t) - power.predict(t)).abs() / prop_m.predict(t) < 1e-9);
    }
}

/// With C = 1 and no cliff, the scale-model prediction equals
/// proportional scaling for any doubling target.
#[test]
fn scale_model_with_ideal_correction_is_proportional() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0005);
    for _ in 0..cases(64) {
        let ipc = f64_in(&mut rng, 1.0, 10_000.0);
        let steps = rng.gen_range(1, 4) as u32;
        let p = ScaleModelPredictor::new(ScaleModelInputs::new(8, ipc, 16, 2.0 * ipc)).unwrap();
        let target = 16u32 << steps;
        let expected = 2.0 * ipc * f64::from(target) / 16.0;
        assert!((p.predict(f64::from(target)) - expected).abs() < 1e-6);
    }
}

/// All two-point fits interpolate their own observations.
#[test]
fn fits_pass_through_observations() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0006);
    for _ in 0..cases(64) {
        let ipc_s = f64_in(&mut rng, 1.0, 1_000.0);
        let ratio = f64_in(&mut rng, 1.05, 2.5);
        let ipc_l = ipc_s * ratio;
        let lin = LinearRegression::fit(8, ipc_s, 16, ipc_l).unwrap();
        let pow = PowerLawRegression::fit(8, ipc_s, 16, ipc_l).unwrap();
        assert!((lin.predict(8.0) - ipc_s).abs() < 1e-6);
        assert!((lin.predict(16.0) - ipc_l).abs() < 1e-6);
        assert!((pow.predict(8.0) - ipc_s).abs() / ipc_s < 1e-9);
        assert!((pow.predict(16.0) - ipc_l).abs() / ipc_l < 1e-9);
        // Log regression is a one-parameter least-squares fit: it need not
        // interpolate, but it must stay between a half and the double of
        // the observations at those points.
        let log = LogRegression::fit(8, ipc_s, 16, ipc_l).unwrap();
        assert!(log.predict(8.0) > 0.25 * ipc_s && log.predict(8.0) < 2.0 * ipc_s);
    }
}

/// Percent error is symmetric in magnitude around the measurement and
/// zero only for exact predictions.
#[test]
fn percent_error_properties() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0007);
    for _ in 0..cases(64) {
        let real = f64_in(&mut rng, 0.001, 1e6);
        let delta = f64_in(&mut rng, 0.0, 2.0);
        assert_eq!(percent_error(real, real), 0.0);
        let e_hi = percent_error(real * (1.0 + delta), real);
        assert!((e_hi - delta * 100.0).abs() < 1e-6);
    }
}

/// A cliff is detected iff some doubling drops MPKI by more than 2x
/// (above the noise floor).
#[test]
fn cliff_detection_matches_definition() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0008);
    for _ in 0..cases(64) {
        let mpki: Vec<f64> = (0..5).map(|_| f64_in(&mut rng, 0.2, 20.0)).collect();
        let sizes = [8u32, 16, 32, 64, 128];
        let mrc = SizedMrc::new(sizes.iter().copied().zip(mpki.iter().copied()));
        let manual = mpki.windows(2).any(|w| w[1] < w[0] / 2.0);
        assert_eq!(gpu_scale_model::core::detect_cliff(&mrc).is_some(), manual);
    }
}

/// The simulator is deterministic: identical runs give identical
/// statistics (modulo wall-clock time), and sharding the run over worker
/// threads (`sim_threads`) changes nothing either.
#[test]
fn simulator_is_deterministic() {
    let mut rng = Rng64::seed_from_u64(0x5eed_0009);
    // Timing simulations are slower; fewer cases.
    for _ in 0..cases(8) {
        let seed = rng.gen_range(0, 1000);
        let ctas = rng.gen_range(24, 96) as u32;
        let spec = PatternSpec::new(PatternKind::PointerChase, 2_000)
            .mem_ops_per_warp(16)
            .compute_per_mem(1.0);
        let wl = Workload::new("prop", seed, vec![Kernel::new("k", ctas, 256, spec)]);
        let cfg = GpuConfig::paper_target(8, MemScale::new(32));
        let a = Simulator::new(cfg.clone(), &wl).run();
        let b = Simulator::new(cfg.clone(), &wl).run();
        a.assert_deterministic_eq(&b);
        let mut sharded_cfg = cfg;
        sharded_cfg.sim_threads = 3;
        let c = Simulator::new(sharded_cfg, &wl).run();
        a.assert_deterministic_eq(&c);
    }
}

/// Randomized strong form of the sharded-engine determinism contract
/// (DESIGN.md §15): over random machine shapes (SM count, memory
/// partitions), random multi-kernel workloads and random access
/// patterns, every worker-thread count produces statistics bit-identical
/// to the serial engine, and a relaxed `sync_slack` window is invariant
/// to the thread count that ran it. Much heavier than the fixed-config
/// engine tests, so it runs only in the `ext-tests` soak tier.
#[cfg(feature = "ext-tests")]
#[test]
fn sharded_engine_matches_serial_on_random_machines() {
    let mut rng = Rng64::seed_from_u64(0x5eed_000b);
    for _ in 0..cases(2) {
        let seed = rng.gen_range(0, 1 << 20);
        let sms = [8u32, 16, 32, 64][rng.gen_range(0, 4) as usize];
        let shards = [1u32, 2, 4, 8][rng.gen_range(0, 4) as usize];
        let kernels = (0..rng.gen_range(1, 4))
            .map(|i| {
                let kind = match rng.gen_range(0, 4) {
                    0 => PatternKind::GlobalSweep {
                        passes: rng.gen_range(1, 3) as u32,
                    },
                    1 => PatternKind::Streaming,
                    2 => PatternKind::PointerChase,
                    _ => PatternKind::WorkingSetMix {
                        levels: vec![(1.0, 0.25), (1.0, f64_in(&mut rng, 0.5, 1.5))],
                    },
                };
                let spec = PatternSpec::new(kind, rng.gen_range(1_000, 6_000))
                    .mem_ops_per_warp(rng.gen_range(4, 24) as u32)
                    .compute_per_mem(f64_in(&mut rng, 0.5, 4.0));
                Kernel::new(format!("k{i}"), rng.gen_range(16, 128) as u32, 256, spec)
            })
            .collect();
        let wl = Workload::new("rand", seed, kernels);
        let mut cfg = GpuConfig::paper_target(sms, MemScale::new(32));
        cfg.mem_shards = shards;
        let serial = Simulator::new(cfg.clone(), &wl).run();
        for threads in [2u32, 4, 8] {
            let mut sharded = cfg.clone();
            sharded.sim_threads = threads;
            let st = Simulator::new(sharded, &wl).run();
            serial.assert_deterministic_eq(&st);
        }
        // Relaxed mode keeps the weaker half of the contract: for a
        // fixed slack the result is a deterministic function of the
        // config and workload, never of the thread count that ran it.
        let mut relaxed = cfg;
        relaxed.sync_slack = [4u32, 16][rng.gen_range(0, 2) as usize];
        relaxed.sim_threads = 2;
        let r2 = Simulator::new(relaxed.clone(), &wl).run();
        relaxed.sim_threads = 8;
        let r8 = Simulator::new(relaxed, &wl).run();
        r2.assert_deterministic_eq(&r8);
    }
}

/// Every issued instruction is accounted: IPC x cycles equals the
/// instruction total, and stall + issue accounting covers all SM-cycles.
#[test]
fn instruction_and_cycle_accounting_is_exact() {
    let mut rng = Rng64::seed_from_u64(0x5eed_000a);
    for _ in 0..cases(8) {
        let seed = rng.gen_range(0, 1000);
        let spec =
            PatternSpec::new(PatternKind::GlobalSweep { passes: 1 }, 4_096).compute_per_mem(2.0);
        let wl = Workload::new("acct", seed, vec![Kernel::new("k", 48, 256, spec)]);
        let cfg = GpuConfig::paper_target(8, MemScale::new(32));
        let st = Simulator::new(cfg, &wl).run();
        assert_eq!(st.warp_instrs, wl.approx_warp_instrs());
        assert_eq!(st.thread_instrs, st.warp_instrs * 32);
        assert_eq!(st.total_sm_cycles, st.cycles * 8);
        assert!(st.mem_stall_sm_cycles + st.idle_sm_cycles <= st.total_sm_cycles);
    }
}
