//! End-to-end strong-scaling pipeline tests: one representative benchmark
//! per scaling class runs through simulation, miss-rate-curve collection
//! and all five predictors, and the scale-model method must beat the
//! baselines where the paper says it does.
//!
//! A coarser 1/32 memory miniature keeps these tests fast; the full 1/8
//! runs live in the `repro` harness.

use gpu_scale_model::core::experiment::StrongScalingExperiment;
use gpu_scale_model::trace::suite::{strong_benchmark, ScalingClass};
use gpu_scale_model::trace::MemScale;

fn scale() -> MemScale {
    MemScale::new(32)
}

#[test]
fn super_linear_benchmark_shows_cliff_and_scale_model_wins() {
    let bench = strong_benchmark("lu", scale()).expect("lu exists");
    let out = StrongScalingExperiment::new(scale())
        .run_benchmark(&bench)
        .expect("pipeline runs");

    assert_eq!(out.measured_class, ScalingClass::SuperLinear);
    assert!(out.cliff_at.is_some(), "lu must exhibit a miss-rate cliff");

    let err = |m: &str| out.method(m).unwrap().at(128).unwrap().error_pct;
    let sm = err("scale-model");
    assert!(sm < 35.0, "scale-model error {sm} out of band");
    for baseline in ["proportional", "linear", "power-law", "logarithmic"] {
        assert!(
            sm < err(baseline),
            "scale-model ({sm:.1}%) must beat {baseline} ({:.1}%) on a cliff",
            err(baseline)
        );
    }
}

#[test]
fn dct_cliff_is_detected_and_classified() {
    // dct's cliff position is calibrated for the default 1/8 miniature;
    // at this coarser test scale we only require the qualitative signals.
    let bench = strong_benchmark("dct", scale()).expect("dct exists");
    let out = StrongScalingExperiment::new(scale())
        .run_benchmark(&bench)
        .expect("pipeline runs");
    assert_eq!(out.measured_class, ScalingClass::SuperLinear);
    assert!(out.cliff_at.is_some(), "dct must exhibit a miss-rate cliff");
    let err = |m: &str| out.method(m).unwrap().at(128).unwrap().error_pct;
    assert!(err("scale-model") < err("logarithmic"));
}

#[test]
fn sub_linear_benchmark_is_tracked_only_by_the_scale_model() {
    let bench = strong_benchmark("bfs", scale()).expect("bfs exists");
    let out = StrongScalingExperiment::new(scale())
        .run_benchmark(&bench)
        .expect("pipeline runs");

    assert_eq!(out.measured_class, ScalingClass::SubLinear);
    assert_eq!(out.cliff_at, None, "bfs has a gradual curve, no cliff");
    // Idle (imbalance) fraction must grow with system size.
    let idle_small = out.measured_at(8).unwrap().f_idle;
    let idle_big = out.measured_at(128).unwrap().f_idle;
    assert!(
        idle_big > idle_small + 0.1,
        "imbalance must grow: {idle_small} -> {idle_big}"
    );

    let err = |m: &str| out.method(m).unwrap().at(128).unwrap().error_pct;
    assert!(err("scale-model") < 35.0);
    assert!(
        err("proportional") > 2.0 * err("scale-model"),
        "proportional must be far too optimistic on bfs"
    );
    assert!(err("power-law") > err("scale-model"));
}

#[test]
fn linear_benchmark_is_predicted_well_by_everything_but_log() {
    let bench = strong_benchmark("pf", scale()).expect("pf exists");
    let out = StrongScalingExperiment::new(scale())
        .run_benchmark(&bench)
        .expect("pipeline runs");

    assert_eq!(out.measured_class, ScalingClass::Linear);
    let err = |m: &str| out.method(m).unwrap().at(128).unwrap().error_pct;
    for m in ["scale-model", "proportional", "linear", "power-law"] {
        assert!(
            err(m) < 12.0,
            "{m} should be accurate on pf, got {}",
            err(m)
        );
    }
    assert!(
        err("logarithmic") > 50.0,
        "log regression must saturate badly on linear scaling"
    );
}

#[test]
fn mrc_is_monotone_and_covers_all_sizes() {
    let bench = strong_benchmark("bfs", scale()).expect("bfs exists");
    let out = StrongScalingExperiment::new(scale())
        .run_benchmark(&bench)
        .expect("pipeline runs");
    let mrc = out.mrc.as_ref().expect("strong runs carry an MRC");
    assert_eq!(mrc.points().len(), 5);
    for w in mrc.points().windows(2) {
        assert!(
            w[1].1 <= w[0].1 * 1.05,
            "MPKI must not grow with capacity: {:?}",
            mrc.points()
        );
    }
}

#[test]
fn alternative_scale_models_still_rank_methods_correctly() {
    // The artifact-appendix variant: 16+32-SM models predicting 128.
    let bench = strong_benchmark("lu", scale()).expect("lu exists");
    let exp = StrongScalingExperiment::new(scale()).with_scale_models(16, 32);
    let out = exp.run_benchmark(&bench).expect("pipeline runs");
    let err = |m: &str| out.method(m).unwrap().at(128).unwrap().error_pct;
    assert!(
        err("scale-model") < err("logarithmic"),
        "scale-model must beat log regression with 16/32 models too"
    );
    // 64 is now a target as well.
    assert!(out.method("scale-model").unwrap().at(64).is_some());
}
