//! GPU scale-model simulation: predict large-GPU performance from small
//! scale models, reproducing the HPCA 2024 paper of the same name.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`trace`] — synthetic GPU workload substrate (the paper's Table II/IV
//!   benchmarks as deterministic trace generators).
//! * [`mem`] — cache hierarchy, DRAM bandwidth model, and miss-rate-curve
//!   collection engines.
//! * [`noc`] — on-chip crossbar and inter-chiplet network models.
//! * [`sim`] — the cycle-level GPU timing simulator (Accel-Sim substitute)
//!   with proportional scale-model configuration derivation.
//! * [`core`] — the paper's contribution: the scale-model prediction
//!   methodology, baseline predictors, and the experiment pipeline.
//! * [`runner`] — dependency-free parallel sweep execution: a work-stealing
//!   worker pool with per-job panic isolation, timeouts, deterministic
//!   result ordering, and pluggable metrics/progress sinks.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for the end-to-end flow: simulate the 8-SM
//! and 16-SM scale models of a workload, collect its miss-rate curve, and
//! predict 128-SM performance without ever simulating the 128-SM target.

#![forbid(unsafe_code)]

pub use gsim_core as core;
pub use gsim_mem as mem;
pub use gsim_noc as noc;
pub use gsim_runner as runner;
pub use gsim_sim as sim;
pub use gsim_trace as trace;
